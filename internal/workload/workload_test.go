package workload

import (
	"math"
	"testing"
	"time"

	"apecache/internal/appmodel"
	"apecache/internal/objstore"
	"apecache/internal/vclock"
)

func TestMovieTrailerMatchesPaper(t *testing.T) {
	app := MovieTrailer()
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(app.Requests) != 5 {
		t.Fatalf("requests = %d, want 5", len(app.Requests))
	}
	// Table III: movieID and thumbnail high priority; rating, plot, cast low.
	wantHigh := map[string]bool{"/movieID": true, "/thumbnail": true}
	for _, r := range app.Requests {
		high := r.Object.Priority == objstore.PriorityHigh
		if wantHigh[r.Object.Path()] != high {
			t.Errorf("%s priority = %d", r.Object.URL, r.Object.Priority)
		}
	}
}

func TestVirtualHomeMatchesPaper(t *testing.T) {
	app := VirtualHome()
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Table III: ARObjects high, ARObjectsID low.
	for _, r := range app.Requests {
		wantHigh := r.Object.Path() == "/arobjects"
		if (r.Object.Priority == objstore.PriorityHigh) != wantHigh {
			t.Errorf("%s priority = %d", r.Object.URL, r.Object.Priority)
		}
	}
}

func TestGenerateRespectsConfigRanges(t *testing.T) {
	cfg := GeneratorConfig{NumApps: 28, Seed: 7}
	suite := Generate(cfg)
	if len(suite.Apps) != 30 {
		t.Fatalf("apps = %d, want 30 (28 synthetic + 2 real)", len(suite.Apps))
	}
	if err := suite.Catalog.Validate(); err != nil {
		t.Fatalf("catalog: %v", err)
	}
	for _, app := range suite.Apps[2:] { // synthetic only
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		for _, o := range app.Objects() {
			if o.Size < 1<<10 || o.Size > 100<<10 {
				t.Errorf("%s size %d out of [1KB,100KB]", o.URL, o.Size)
			}
			if o.TTL < 10*time.Minute || o.TTL > 60*time.Minute {
				t.Errorf("%s TTL %v out of [10m,60m]", o.URL, o.TTL)
			}
			if o.OriginDelay < 20*time.Millisecond || o.OriginDelay > 50*time.Millisecond {
				t.Errorf("%s delay %v out of [20ms,50ms]", o.URL, o.OriginDelay)
			}
		}
		// Every app has at least one high-priority object (its critical
		// path is non-empty).
		high := 0
		for _, o := range app.Objects() {
			if o.Priority == objstore.PriorityHigh {
				high++
			}
		}
		if high == 0 {
			t.Errorf("%s has no high-priority objects", app.Name)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(GeneratorConfig{NumApps: 10, Seed: 42})
	b := Generate(GeneratorConfig{NumApps: 10, Seed: 42})
	if len(a.Apps) != len(b.Apps) {
		t.Fatal("different app counts")
	}
	for i := range a.Apps {
		ao, bo := a.Apps[i].Objects(), b.Apps[i].Objects()
		if len(ao) != len(bo) {
			t.Fatalf("app %d: %d vs %d objects", i, len(ao), len(bo))
		}
		for j := range ao {
			if ao[j].URL != bo[j].URL || ao[j].Size != bo[j].Size || ao[j].TTL != bo[j].TTL {
				t.Fatalf("app %d object %d differs", i, j)
			}
		}
	}
	for name, f := range a.Freq {
		if math.Abs(f-b.Freq[name]) > 1e-12 {
			t.Fatalf("freq for %s differs", name)
		}
	}
}

func TestFrequenciesAverageToConfig(t *testing.T) {
	suite := Generate(GeneratorConfig{NumApps: 28, AvgFreq: 3, Seed: 1})
	var sum float64
	for _, f := range suite.Freq {
		if f <= 0 {
			t.Fatalf("non-positive frequency %f", f)
		}
		sum += f
	}
	mean := sum / float64(len(suite.Freq))
	if math.Abs(mean-3) > 1e-9 {
		t.Errorf("mean frequency = %f, want 3", mean)
	}
	// Zipf: frequencies must not be uniform.
	var min, max float64 = math.Inf(1), 0
	for _, f := range suite.Freq {
		min = math.Min(min, f)
		max = math.Max(max, f)
	}
	if max/min < 2 {
		t.Errorf("Zipf spread too flat: min=%f max=%f", min, max)
	}
}

// instantFetcher returns immediately (latency comes only from compose).
type instantFetcher struct{}

func (instantFetcher) Get(string) ([]byte, error) { return []byte("x"), nil }

func TestRunExecutesAtConfiguredRate(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	var res *RunResult
	suite := GenerateSyntheticSuite(GeneratorConfig{NumApps: 5, AvgFreq: 3, Seed: 3})
	sim.Run("main", func() {
		res = Run(sim, suite, func(*appmodel.App) appmodel.Fetcher { return instantFetcher{} },
			20*time.Minute, 99)
	})
	sim.Shutdown()
	sim.Wait()
	if err := sim.Err(); err != nil {
		t.Fatal(err)
	}
	// 5 apps × 3/min × 20 min = 300 expected executions; Poisson noise
	// stays well within ±40%.
	if res.Executions < 180 || res.Executions > 420 {
		t.Errorf("executions = %d, want ≈300", res.Executions)
	}
	if res.Failures != 0 {
		t.Errorf("failures = %d", res.Failures)
	}
	if res.Overall.Count() != res.Executions {
		t.Errorf("overall samples %d != executions %d", res.Overall.Count(), res.Executions)
	}
	for name, stats := range res.PerApp {
		if stats.Count() == 0 {
			t.Errorf("app %s never executed", name)
		}
	}
}
