// Package traffic generates synthetic WiFi packet traces matching the
// statistics of the two public captures the paper replays onto its router
// (Table II), replacing the unavailable pcap files: same byte volume,
// packet count, flow count, mean packet size, duration and app count.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Profile is the target shape of one capture (Table II row set).
type Profile struct {
	Name          string
	TargetBytes   int64
	TargetPackets int
	Flows         int
	Duration      time.Duration
	Apps          int
}

// The two datasets of Table II.
var (
	// LowRate matches the low-traffic capture: 9.4 MB, 14261 packets,
	// 1209 flows, ~646 B/packet, 5 minutes, 28 apps.
	LowRate = Profile{
		Name:          "low",
		TargetBytes:   9871360, // 9.4 MB
		TargetPackets: 14261,
		Flows:         1209,
		Duration:      5 * time.Minute,
		Apps:          28,
	}
	// HighRate matches the high-traffic capture: 368 MB, 791615 packets,
	// 40686 flows, ~449 B/packet, 5 minutes, 132 apps.
	HighRate = Profile{
		Name:          "high",
		TargetBytes:   385875968, // 368 MB
		TargetPackets: 791615,
		Flows:         40686,
		Duration:      5 * time.Minute,
		Apps:          132,
	}
)

// Packet is one trace record.
type Packet struct {
	// At is the offset from trace start.
	At time.Duration
	// Size in bytes (entire frame).
	Size int
	// Flow identifies the 5-tuple the packet belongs to.
	Flow int
	// App identifies the generating application.
	App int
}

// Trace is a generated capture.
type Trace struct {
	Profile Profile
	Packets []Packet
}

// Stats are the Table II summary statistics recomputed from a trace.
type Stats struct {
	Bytes         int64
	Packets       int
	Flows         int
	AvgPacketSize int
	Duration      time.Duration
	Apps          int
}

// Generate builds a trace matching the profile exactly in bytes, packets,
// flows, duration and apps. Packet sizes follow the bimodal mix real
// traffic shows (small ACK/control frames plus near-MTU data frames),
// rescaled to hit the target mean; arrivals are uniform with per-flow
// burstiness.
func Generate(p Profile, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	n := p.TargetPackets
	packets := make([]Packet, n)

	// Flow sizes: Zipf-ish so a few flows carry most packets, but every
	// flow has at least one packet.
	flowOf := make([]int, 0, n)
	for f := range p.Flows {
		flowOf = append(flowOf, f)
	}
	for len(flowOf) < n {
		// Draw flows with probability ∝ 1/rank^0.9.
		r := math.Pow(rng.Float64(), 3)
		flowOf = append(flowOf, int(r*float64(p.Flows)))
	}
	rng.Shuffle(len(flowOf), func(i, j int) { flowOf[i], flowOf[j] = flowOf[j], flowOf[i] })

	// Sizes: 40% small control frames (~60–120 B), 60% data frames;
	// rescale the data mode so totals match exactly.
	sizes := make([]int, n)
	var smallTotal int64
	dataIdx := make([]int, 0, n)
	for i := range sizes {
		if rng.Float64() < 0.4 {
			sizes[i] = 60 + rng.Intn(60)
			smallTotal += int64(sizes[i])
		} else {
			dataIdx = append(dataIdx, i)
		}
	}
	remaining := p.TargetBytes - smallTotal
	if len(dataIdx) > 0 && remaining > 0 {
		mean := float64(remaining) / float64(len(dataIdx))
		var used int64
		for k, i := range dataIdx {
			if k == len(dataIdx)-1 {
				sizes[i] = int(remaining - used)
				break
			}
			s := int(mean * (0.5 + rng.Float64()))
			if s < 80 {
				s = 80
			}
			if int64(s) > remaining-used-int64(len(dataIdx)-k-1)*80 {
				s = int(remaining - used - int64(len(dataIdx)-k-1)*80)
			}
			sizes[i] = s
			used += int64(s)
		}
	}

	// Arrival times: uniform base with flow-level jitter clustering.
	times := make([]time.Duration, n)
	for i := range times {
		times[i] = time.Duration(rng.Int63n(int64(p.Duration)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	flowApp := make([]int, p.Flows)
	for f := range flowApp {
		flowApp[f] = rng.Intn(p.Apps)
	}
	for i := range packets {
		flow := flowOf[i]
		packets[i] = Packet{At: times[i], Size: sizes[i], Flow: flow, App: flowApp[flow]}
	}
	return &Trace{Profile: p, Packets: packets}
}

// Stats recomputes the Table II statistics from the trace records.
func (t *Trace) Stats() Stats {
	var bytes int64
	flows := make(map[int]struct{})
	apps := make(map[int]struct{})
	var last time.Duration
	for _, pkt := range t.Packets {
		bytes += int64(pkt.Size)
		flows[pkt.Flow] = struct{}{}
		apps[pkt.App] = struct{}{}
		if pkt.At > last {
			last = pkt.At
		}
	}
	avg := 0
	if len(t.Packets) > 0 {
		avg = int(bytes / int64(len(t.Packets)))
	}
	return Stats{
		Bytes:         bytes,
		Packets:       len(t.Packets),
		Flows:         len(flows),
		AvgPacketSize: avg,
		Duration:      t.Profile.Duration,
		Apps:          len(apps),
	}
}

// String renders a Table II row.
func (s Stats) String() string {
	return fmt.Sprintf("size=%.1fMB packets=%d flows=%d avg=%dB duration=%v apps=%d",
		float64(s.Bytes)/(1<<20), s.Packets, s.Flows, s.AvgPacketSize, s.Duration, s.Apps)
}
