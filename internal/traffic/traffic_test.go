package traffic

import (
	"math"
	"sort"
	"testing"
)

func TestGenerateMatchesTableIIProfiles(t *testing.T) {
	for _, p := range []Profile{LowRate, HighRate} {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			trace := Generate(p, 1)
			s := trace.Stats()
			if s.Packets != p.TargetPackets {
				t.Errorf("packets = %d, want %d", s.Packets, p.TargetPackets)
			}
			if s.Bytes != p.TargetBytes {
				t.Errorf("bytes = %d, want %d", s.Bytes, p.TargetBytes)
			}
			if s.Flows != p.Flows {
				t.Errorf("flows = %d, want %d", s.Flows, p.Flows)
			}
			if s.Apps > p.Apps {
				t.Errorf("apps = %d, want <= %d", s.Apps, p.Apps)
			}
			// Mean packet size must land near the published value.
			wantAvg := int(p.TargetBytes) / p.TargetPackets
			if math.Abs(float64(s.AvgPacketSize-wantAvg)) > 2 {
				t.Errorf("avg packet = %d, want ≈%d", s.AvgPacketSize, wantAvg)
			}
		})
	}
}

func TestGenerateSortedArrivalsWithinDuration(t *testing.T) {
	trace := Generate(LowRate, 2)
	if !sort.SliceIsSorted(trace.Packets, func(i, j int) bool {
		return trace.Packets[i].At < trace.Packets[j].At
	}) {
		t.Error("packets not time-ordered")
	}
	for _, p := range trace.Packets {
		if p.At < 0 || p.At >= trace.Profile.Duration {
			t.Fatalf("packet at %v outside [0,%v)", p.At, trace.Profile.Duration)
		}
		if p.Size <= 0 {
			t.Fatalf("non-positive packet size %d", p.Size)
		}
		if p.Flow < 0 || p.Flow >= trace.Profile.Flows {
			t.Fatalf("flow %d out of range", p.Flow)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(LowRate, 7)
	b := Generate(LowRate, 7)
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs between same-seed runs", i)
		}
	}
}

func TestHighRateIsDenserThanLowRate(t *testing.T) {
	low := Generate(LowRate, 3).Stats()
	high := Generate(HighRate, 3).Stats()
	lowRate := float64(low.Bytes) / low.Duration.Seconds()
	highRate := float64(high.Bytes) / high.Duration.Seconds()
	if highRate < 20*lowRate {
		t.Errorf("high rate %f B/s should dwarf low rate %f B/s", highRate, lowRate)
	}
}
