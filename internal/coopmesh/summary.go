package coopmesh

import (
	"encoding/json"
	"fmt"
	"sort"

	"apecache/internal/cachepolicy"
	"apecache/internal/transport"
)

// Directory route constants. The controller mounts them under /mesh so
// they share the Wi-Cache controller's mux with /locate and /fleet.
const (
	PathPrefix  = "/mesh"
	PathSummary = PathPrefix + "/summary"
	PathLookup  = PathPrefix + "/lookup"
	PathPeers   = PathPrefix + "/peers"
)

// Summary is one AP's published content summary: what the AP can serve a
// peer right now, compressed to a Bloom filter plus per-domain digests.
// Seq orders publications from one node (the directory drops reordered
// deliveries); Generation counts coherence purges applied at the AP, so
// two summaries with equal entry counts still differ after a purge.
type Summary struct {
	Node       string                  `json:"node"`
	Addr       transport.Addr          `json:"addr"`
	Seq        uint64                  `json:"seq"`
	Generation uint64                  `json:"generation"`
	Entries    int                     `json:"entries"`
	Bloom      *Bloom                  `json:"bloom,omitempty"`
	Domains    []cachepolicy.MeshDomain `json:"domains,omitempty"`
}

// BuildSummary snapshots a store into a publishable summary. fpRate
// bounds the Bloom false-positive rate (DefaultFPRate when zero).
func BuildSummary(node string, addr transport.Addr, store *cachepolicy.Store, fpRate float64, seq, generation uint64) *Summary {
	hashes, domains := store.MeshView()
	sort.Slice(domains, func(i, j int) bool { return domains[i].Domain < domains[j].Domain })
	s := &Summary{Node: node, Addr: addr, Seq: seq, Generation: generation,
		Entries: len(hashes), Domains: domains}
	if len(hashes) > 0 {
		s.Bloom = NewBloom(len(hashes), fpRate)
		for _, h := range hashes {
			s.Bloom.Add(h)
		}
	}
	return s
}

// Encode renders the summary for the wire.
func (s *Summary) Encode() ([]byte, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("coopmesh: encode summary: %w", err)
	}
	return body, nil
}

// DecodeSummary parses and validates a published summary.
func DecodeSummary(body []byte) (*Summary, error) {
	var s Summary
	if err := json.Unmarshal(body, &s); err != nil {
		return nil, fmt.Errorf("coopmesh: decode summary: %w", err)
	}
	if s.Node == "" {
		return nil, fmt.Errorf("coopmesh: summary without node")
	}
	if s.Addr.IsZero() {
		return nil, fmt.Errorf("coopmesh: summary without serve address")
	}
	if err := s.Bloom.valid(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Candidate is one directory lookup answer: a peer whose summary says it
// likely holds the object, plus how old that summary is (the requester
// folds staleness into its trust in the answer).
type Candidate struct {
	Node   string         `json:"node"`
	Addr   transport.Addr `json:"addr"`
	AgeSec float64        `json:"age_sec"`
}
