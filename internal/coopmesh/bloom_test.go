package coopmesh

import (
	"math/rand"
	"testing"
)

// The summary filter's contract: an inserted member is NEVER reported
// absent (a false negative would hide cached bytes from the whole mesh),
// and the measured false-positive rate stays near the configured bound.
// Swept across randomized catalogs of several sizes and seeds.
func TestBloomMembershipProperty(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 5000} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			members := make(map[uint64]bool, n)
			b := NewBloom(n, DefaultFPRate)
			for len(members) < n {
				h := rng.Uint64()
				members[h] = true
				b.Add(h)
			}
			for h := range members {
				if !b.MayContain(h) {
					t.Fatalf("n=%d seed=%d: false negative on member %#x", n, seed, h)
				}
			}
			const probes = 10000
			fps := 0
			for i := 0; i < probes; i++ {
				h := rng.Uint64()
				if members[h] {
					continue
				}
				if b.MayContain(h) {
					fps++
				}
			}
			rate := float64(fps) / probes
			// Headroom over the configured 1%: the sizing formula is
			// asymptotic, so sub-hundred-bit filters wobble hard (hence 6x
			// under n=100), but an order-of-magnitude miss at real catalog
			// sizes would mean broken hashing.
			bound := 3 * DefaultFPRate
			if n < 100 {
				bound = 6 * DefaultFPRate
			}
			if rate > bound {
				t.Errorf("n=%d seed=%d: measured FP rate %.4f, bound %.4f", n, seed, rate, bound)
			}
		}
	}
}

func TestBloomSizing(t *testing.T) {
	for _, n := range []int{1, 10, 1000, 100000} {
		b := NewBloom(n, DefaultFPRate)
		if b.K < 1 || b.K > 16 {
			t.Errorf("n=%d: k=%d outside [1,16]", n, b.K)
		}
		if b.M < 64 {
			t.Errorf("n=%d: m=%d below the 64-bit floor", n, b.M)
		}
		if err := b.valid(); err != nil {
			t.Errorf("n=%d: fresh filter invalid: %v", n, err)
		}
	}
}

func TestBloomValidation(t *testing.T) {
	var nilBloom *Bloom
	if err := nilBloom.valid(); err != nil {
		t.Errorf("nil bloom (empty cache) must validate: %v", err)
	}
	if nilBloom.MayContain(42) {
		t.Error("nil bloom claims membership")
	}
	b := NewBloom(100, DefaultFPRate)
	b.Bits = b.Bits[:len(b.Bits)-1]
	if err := b.valid(); err == nil {
		t.Error("truncated bit array validated")
	}
	b2 := NewBloom(100, DefaultFPRate)
	b2.K = 99
	if err := b2.valid(); err == nil {
		t.Error("absurd probe count validated")
	}
}
