package coopmesh

import (
	"encoding/json"
	"net/url"
	"sort"
	"sync"
	"time"

	"apecache/internal/dnswire"
	"apecache/internal/httplite"
	"apecache/internal/telemetry"
	"apecache/internal/transport"
	"apecache/internal/vclock"
)

// Directory is the mesh control plane living inside the Wi-Cache
// controller: it ingests published summaries into a peer table and
// answers "who likely holds this URL" lookups. It is deliberately
// advisory — a stale or false-positive answer costs the requester one
// wasted LAN round trip before the ordinary edge fallback.
type Directory struct {
	env vclock.Env

	mu    sync.Mutex
	peers map[string]*peerState
	// tombs records when the controller last saw a coherence purge for a
	// URL; summaries received at or before that instant may still claim
	// the purged bytes, so Lookup skips those peers for the URL.
	tombs map[string]time.Time

	// Summaries counts accepted publications, Lookups all lookup
	// requests, LookupHits lookups answering >= 1 candidate, Purges
	// tombstones recorded. Read them only from quiescent code.
	Summaries  int
	Lookups    int
	LookupHits int
	Purges     int

	summariesC  *telemetry.Counter
	staleSeqC   *telemetry.Counter
	lookupsC    *telemetry.Counter
	lookupHitsC *telemetry.Counter
	purgesC     *telemetry.Counter
}

// peerState is one node's latest summary and when it arrived.
type peerState struct {
	sum      *Summary
	received time.Time
}

// NewDirectory builds an empty directory.
func NewDirectory(env vclock.Env) *Directory {
	return &Directory{
		env:   env,
		peers: make(map[string]*peerState),
		tombs: make(map[string]time.Time),
	}
}

// Instrument registers the directory's counters and a summary-staleness
// gauge on the controller's telemetry bundle.
func (d *Directory) Instrument(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	m := tel.Metrics
	d.summariesC = m.Counter("coopmesh_summaries_total", "mesh content summaries accepted")
	d.staleSeqC = m.Counter("coopmesh_summaries_stale_total", "mesh summaries dropped for stale sequence numbers")
	d.lookupsC = m.Counter("coopmesh_lookups_total", "mesh directory lookups served")
	d.lookupHitsC = m.Counter("coopmesh_lookup_hits_total", "mesh lookups answered with at least one candidate peer")
	d.purgesC = m.Counter("coopmesh_purge_tombstones_total", "purge tombstones recorded against published summaries")
	m.GaugeFunc("coopmesh_peers", "APs with a live published summary", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.peers))
	})
	m.GaugeFunc("coopmesh_summary_age_max_seconds", "age of the stalest published summary", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		now := d.env.Now()
		max := 0.0
		for _, p := range d.peers {
			if age := now.Sub(p.received).Seconds(); age > max {
				max = age
			}
		}
		return max
	})
}

// Mount registers the directory's routes on a controller mux.
func (d *Directory) Mount(mux *httplite.Mux) {
	mux.HandleFunc(PathSummary, d.handleSummary)
	mux.HandleFunc(PathLookup, d.handleLookup)
	mux.HandleFunc(PathPeers, d.handlePeers)
}

// Ingest installs a published summary. Out-of-order deliveries (a seq at
// or below the last accepted one for the node) are dropped so a delayed
// older summary cannot overwrite a newer picture of the cache.
func (d *Directory) Ingest(s *Summary) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if prev, ok := d.peers[s.Node]; ok && s.Seq <= prev.sum.Seq {
		d.staleSeqC.Inc()
		return nil // idempotent: re-delivery and reordering are not errors
	}
	d.peers[s.Node] = &peerState{sum: s, received: d.env.Now()}
	d.Summaries++
	d.summariesC.Inc()
	return nil
}

// Purge tombstones a URL: peers whose current summary predates this
// moment are no longer offered for it, until they publish again.
func (d *Directory) Purge(rawURL string) {
	basic := dnswire.BasicURL(rawURL)
	d.mu.Lock()
	d.tombs[basic] = d.env.Now()
	d.Purges++
	d.purgesC.Inc()
	d.mu.Unlock()
}

// Lookup returns the peers whose summaries claim the URL, excluding the
// requester itself and any peer whose summary predates the URL's purge
// tombstone. Candidates are ordered freshest-summary-first (node name
// breaking ties) so the requester's first try is the best-informed one.
func (d *Directory) Lookup(rawURL, from string) []Candidate {
	basic := dnswire.BasicURL(rawURL)
	h := dnswire.HashURL(basic)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Lookups++
	d.lookupsC.Inc()
	now := d.env.Now()
	tomb, tombed := d.tombs[basic]
	var out []Candidate
	for node, p := range d.peers {
		if node == from {
			continue
		}
		if tombed && !p.received.After(tomb) {
			continue // summary may predate the purge: don't offer stale bytes
		}
		if !p.sum.Bloom.MayContain(h) {
			continue
		}
		out = append(out, Candidate{Node: node, Addr: p.sum.Addr, AgeSec: now.Sub(p.received).Seconds()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AgeSec != out[j].AgeSec {
			return out[i].AgeSec < out[j].AgeSec
		}
		return out[i].Node < out[j].Node
	})
	if len(out) > 0 {
		d.LookupHits++
		d.lookupHitsC.Inc()
	}
	return out
}

// PeerInfo is one row of the /mesh/peers listing.
type PeerInfo struct {
	Node       string         `json:"node"`
	Addr       transport.Addr `json:"addr"`
	Entries    int            `json:"entries"`
	Domains    int            `json:"domains"`
	Seq        uint64         `json:"seq"`
	Generation uint64         `json:"generation"`
	AgeSec     float64        `json:"age_sec"`
}

// Peers snapshots the peer table for operators (apectl peers).
func (d *Directory) Peers() []PeerInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := d.env.Now()
	out := make([]PeerInfo, 0, len(d.peers))
	for node, p := range d.peers {
		out = append(out, PeerInfo{
			Node: node, Addr: p.sum.Addr,
			Entries: p.sum.Entries, Domains: len(p.sum.Domains),
			Seq: p.sum.Seq, Generation: p.sum.Generation,
			AgeSec: now.Sub(p.received).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// handleSummary serves POST /mesh/summary.
func (d *Directory) handleSummary(req *httplite.Request) *httplite.Response {
	s, err := DecodeSummary(req.Body)
	if err != nil {
		return httplite.NewResponse(400, []byte(err.Error()))
	}
	if err := d.Ingest(s); err != nil {
		return httplite.NewResponse(409, []byte(err.Error()))
	}
	return httplite.NewResponse(200, nil)
}

// handleLookup serves GET /mesh/lookup?u=<url>&from=<node>.
func (d *Directory) handleLookup(req *httplite.Request) *httplite.Response {
	params := queryParams(req.Path)
	target := params["u"]
	if target == "" {
		return httplite.NewResponse(400, []byte("missing u parameter"))
	}
	body, err := json.Marshal(d.Lookup(target, params["from"]))
	if err != nil {
		return httplite.NewResponse(500, []byte(err.Error()))
	}
	resp := httplite.NewResponse(200, body)
	resp.Set("Content-Type", "application/json")
	return resp
}

// handlePeers serves GET /mesh/peers.
func (d *Directory) handlePeers(req *httplite.Request) *httplite.Response {
	body, err := json.MarshalIndent(d.Peers(), "", "  ")
	if err != nil {
		return httplite.NewResponse(500, []byte(err.Error()))
	}
	resp := httplite.NewResponse(200, body)
	resp.Set("Content-Type", "application/json")
	return resp
}

// queryParams parses the query string of a request path.
func queryParams(path string) map[string]string {
	out := make(map[string]string)
	i := -1
	for j := 0; j < len(path); j++ {
		if path[j] == '?' {
			i = j
			break
		}
	}
	if i < 0 {
		return out
	}
	values, err := url.ParseQuery(path[i+1:])
	if err != nil {
		return out
	}
	for k, vs := range values {
		if len(vs) > 0 {
			out[k] = vs[0]
		}
	}
	return out
}
