package coopmesh

import (
	"testing"
	"time"

	"apecache/internal/cachepolicy"
	"apecache/internal/httplite"
	"apecache/internal/objstore"
	"apecache/internal/simnet"
	"apecache/internal/transport"
	"apecache/internal/vclock"
)

// The publisher loop must deliver monotonically-sequenced summaries over
// the simulated network, carry purge-generation bumps, and stop cleanly.
func TestPublisherLoopDeliversSummaries(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	var dir *Directory
	sim.Run("main", func() {
		net := simnet.New(sim, 1)
		net.SetLink("ap", "ctl", simnet.Path{Latency: 2 * time.Millisecond})
		dir = NewDirectory(sim)
		mux := httplite.NewMux()
		dir.Mount(mux)
		l, err := net.Node("ctl").Listen(7000)
		if err != nil {
			t.Error(err)
			return
		}
		srv := httplite.NewServer(sim, mux)
		sim.Go("ctl.http", func() { srv.Serve(l) })

		store := cachepolicy.NewStore(sim, 5<<20, 0, cachepolicy.NewPACM(), nil)
		obj := &objstore.Object{URL: "http://a.example/x", App: "t", Size: 64, TTL: time.Hour}
		if err := store.Put(obj, make([]byte, 64), 0); err != nil {
			t.Error(err)
			return
		}

		pub, err := NewPublisher(PublisherConfig{
			Env: sim, Host: net.Node("ap"), Node: "ap0",
			Addr:   transport.Addr{Host: "ap", Port: 8080},
			Target: transport.Addr{Host: "ctl", Port: 7000},
			Store:  store, Interval: time.Second,
		})
		if err != nil {
			t.Error(err)
			return
		}
		pub.Start()
		sim.Sleep(3500 * time.Millisecond)

		peers := dir.Peers()
		if len(peers) != 1 || peers[0].Node != "ap0" {
			t.Errorf("peers = %+v, want ap0", peers)
			pub.Stop()
			l.Close()
			return
		}
		if peers[0].Seq < 3 || peers[0].Entries != 1 || peers[0].Generation != 0 {
			t.Errorf("peer row = %+v, want seq>=3 entries=1 gen=0", peers[0])
		}

		// A purge bump rides the next publication.
		pub.Bump()
		if err := pub.Publish(); err != nil {
			t.Error(err)
		}
		if got := dir.Peers()[0].Generation; got != 1 {
			t.Errorf("generation after bump = %d, want 1", got)
		}

		pub.Stop()
		sim.Sleep(2 * time.Second)
		after := dir.Summaries
		sim.Sleep(3 * time.Second)
		if dir.Summaries != after {
			t.Errorf("publisher kept publishing after Stop: %d -> %d", after, dir.Summaries)
		}
		l.Close()
	})
	sim.Shutdown()
	sim.Wait()
	if err := sim.Err(); err != nil {
		t.Fatal(err)
	}
}
