package coopmesh

import (
	"encoding/json"
	"net/url"
	"strings"
	"testing"
	"time"

	"apecache/internal/dnswire"
	"apecache/internal/httplite"
	"apecache/internal/transport"
	"apecache/internal/vclock"
)

// testSummary fabricates a published summary claiming the given URLs.
func testSummary(node string, seq uint64, urls ...string) *Summary {
	s := &Summary{
		Node: node,
		Addr: transport.Addr{Host: node, Port: 8080},
		Seq:  seq, Entries: len(urls),
	}
	if len(urls) > 0 {
		s.Bloom = NewBloom(len(urls), DefaultFPRate)
		for _, u := range urls {
			s.Bloom.Add(dnswire.HashURL(dnswire.BasicURL(u)))
		}
	}
	return s
}

func TestDirectoryIngestDropsStaleSeq(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	d := NewDirectory(sim)
	const u = "http://a.example/x"
	if err := d.Ingest(testSummary("ap0", 2, u)); err != nil {
		t.Fatal(err)
	}
	// A delayed older summary (and a duplicate delivery) must not
	// overwrite the newer picture — and must not error either.
	if err := d.Ingest(testSummary("ap0", 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Ingest(testSummary("ap0", 2)); err != nil {
		t.Fatal(err)
	}
	if d.Summaries != 1 {
		t.Fatalf("Summaries = %d, want 1", d.Summaries)
	}
	if got := d.Lookup(u, "other"); len(got) != 1 || got[0].Node != "ap0" {
		t.Fatalf("lookup after stale-seq replay = %+v, want ap0", got)
	}
	if err := d.Ingest(testSummary("ap0", 3)); err != nil {
		t.Fatal(err)
	}
	if got := d.Lookup(u, "other"); len(got) != 0 {
		t.Fatalf("seq-3 summary no longer claims %s, lookup = %+v", u, got)
	}
}

func TestDirectoryLookupExcludesRequesterAndSortsFreshest(t *testing.T) {
	const u = "http://a.example/x"
	sim := vclock.NewSim(time.Time{})
	sim.Run("main", func() {
		d := NewDirectory(sim)
		if err := d.Ingest(testSummary("ap0", 1, u)); err != nil {
			t.Error(err)
		}
		sim.Sleep(3 * time.Second)
		if err := d.Ingest(testSummary("ap1", 1, u)); err != nil {
			t.Error(err)
		}
		if err := d.Ingest(testSummary("ap2", 1, "http://other.example/y")); err != nil {
			t.Error(err)
		}

		got := d.Lookup(u, "ap1")
		if len(got) != 1 || got[0].Node != "ap0" {
			t.Errorf("lookup from ap1 = %+v, want just ap0 (self excluded, ap2 not a member)", got)
		}
		got = d.Lookup(u, "other")
		if len(got) != 2 || got[0].Node != "ap1" || got[1].Node != "ap0" {
			t.Errorf("lookup = %+v, want freshest-first [ap1 ap0]", got)
		}
		if got[0].AgeSec >= got[1].AgeSec {
			t.Errorf("ages not ascending: %+v", got)
		}
		if d.Lookups != 2 || d.LookupHits != 2 {
			t.Errorf("Lookups=%d LookupHits=%d, want 2/2", d.Lookups, d.LookupHits)
		}
	})
	sim.Shutdown()
	sim.Wait()
	if err := sim.Err(); err != nil {
		t.Fatal(err)
	}
}

// A purge tombstones the URL: peers whose summary predates it stop being
// offered until they publish a fresh summary.
func TestDirectoryPurgeTombstone(t *testing.T) {
	const u = "http://a.example/x"
	sim := vclock.NewSim(time.Time{})
	sim.Run("main", func() {
		d := NewDirectory(sim)
		if err := d.Ingest(testSummary("ap0", 1, u)); err != nil {
			t.Error(err)
		}
		sim.Sleep(time.Second)
		if len(d.Lookup(u, "other")) != 1 {
			t.Error("pre-purge lookup found nothing")
		}
		d.Purge(u)
		if got := d.Lookup(u, "other"); len(got) != 0 {
			t.Errorf("post-purge lookup = %+v, want none", got)
		}
		// Other URLs from the same peer stay unaffected.
		if err := d.Ingest(testSummary("ap1", 1, "http://b.example/z")); err != nil {
			t.Error(err)
		}
		if len(d.Lookup("http://b.example/z", "other")) != 1 {
			t.Error("tombstone for one URL hid an unrelated one")
		}
		// A summary published after the purge reflects post-purge contents
		// and may be offered again (the AP re-cached the object).
		sim.Sleep(time.Second)
		if err := d.Ingest(testSummary("ap0", 2, u)); err != nil {
			t.Error(err)
		}
		if got := d.Lookup(u, "other"); len(got) != 1 || got[0].Node != "ap0" {
			t.Errorf("post-republish lookup = %+v, want ap0 again", got)
		}
		if d.Purges != 1 {
			t.Errorf("Purges = %d, want 1", d.Purges)
		}
	})
	sim.Shutdown()
	sim.Wait()
	if err := sim.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryHandlers(t *testing.T) {
	const u = "http://a.example/x"
	sim := vclock.NewSim(time.Time{})
	d := NewDirectory(sim)

	if resp := d.handleSummary(&httplite.Request{Body: []byte("{")}); resp.Status != 400 {
		t.Errorf("bad summary body: status %d, want 400", resp.Status)
	}
	body, err := testSummary("ap0", 1, u).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if resp := d.handleSummary(&httplite.Request{Body: body}); resp.Status != 200 {
		t.Errorf("summary post: status %d, want 200", resp.Status)
	}

	if resp := d.handleLookup(&httplite.Request{Path: PathLookup}); resp.Status != 400 {
		t.Errorf("lookup without u: status %d, want 400", resp.Status)
	}
	lreq := &httplite.Request{Path: PathLookup + "?u=" + url.QueryEscape(u) + "&from=ap1"}
	resp := d.handleLookup(lreq)
	if resp.Status != 200 {
		t.Fatalf("lookup: status %d", resp.Status)
	}
	var cands []Candidate
	if err := json.Unmarshal(resp.Body, &cands); err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Node != "ap0" {
		t.Errorf("lookup body = %+v, want ap0", cands)
	}

	presp := d.handlePeers(&httplite.Request{Path: PathPeers})
	if presp.Status != 200 || !strings.Contains(string(presp.Body), `"ap0"`) {
		t.Errorf("peers listing: status %d body %s", presp.Status, presp.Body)
	}
}
