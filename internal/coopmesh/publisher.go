package coopmesh

import (
	"fmt"
	"sync"
	"time"

	"apecache/internal/cachepolicy"
	"apecache/internal/httplite"
	"apecache/internal/telemetry"
	"apecache/internal/transport"
	"apecache/internal/vclock"
)

// DefaultSummaryInterval is the publish cadence when PublisherConfig
// leaves it zero. Summaries are tiny (a few hundred bytes), so they can
// run well below the 10s telemetry snapshot cadence; lower staleness
// directly raises the peer-hit rate.
const DefaultSummaryInterval = 5 * time.Second

// PublisherConfig wires a summary publisher to its store and directory.
type PublisherConfig struct {
	Env      vclock.Env         // clock and task spawner (virtual under simnet)
	Host     transport.Host     // local host to dial from
	Node     string             // identity stamped on every summary
	Addr     transport.Addr     // this AP's object-serving endpoint peers dial
	Target   transport.Addr     // mesh directory (Wi-Cache controller) endpoint
	Store    *cachepolicy.Store // cache to summarize
	Interval time.Duration      // publish cadence; DefaultSummaryInterval when zero
	FPRate   float64            // Bloom false-positive bound; DefaultFPRate when zero
	// Telemetry, when set, receives publish counters and a staleness
	// gauge. Leave nil on APs without the mesh so the metric families of
	// mesh-off runs stay byte-identical.
	Telemetry *telemetry.Telemetry
}

// Publisher periodically builds a content summary from the AP store and
// POSTs it to the mesh directory — the same push pattern as the
// telemetry snapshot pusher, and with the same failure model: a missed
// publish is counted, not fatal, and merely leaves the directory with a
// staler picture of this AP.
type Publisher struct {
	cfg    PublisherConfig
	client *httplite.Client

	pushes   *telemetry.Counter
	pushErrs *telemetry.Counter

	mu       sync.Mutex
	stopped  bool
	seq      uint64
	gen      uint64
	lastPush time.Time
}

// NewPublisher builds a publisher; call Start for the periodic loop or
// Publish for a one-shot export.
func NewPublisher(cfg PublisherConfig) (*Publisher, error) {
	if cfg.Env == nil || cfg.Host == nil || cfg.Store == nil || cfg.Node == "" || cfg.Addr.IsZero() || cfg.Target.IsZero() {
		return nil, fmt.Errorf("coopmesh: publisher needs Env, Host, Store, Node, Addr, and Target")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultSummaryInterval
	}
	if cfg.FPRate <= 0 || cfg.FPRate >= 1 {
		cfg.FPRate = DefaultFPRate
	}
	p := &Publisher{cfg: cfg, client: httplite.NewClient(cfg.Host)}
	if tel := cfg.Telemetry; tel != nil {
		p.pushes = tel.Metrics.Counter("coopmesh_summary_pushes_total", "mesh content summaries published")
		p.pushErrs = tel.Metrics.Counter("coopmesh_summary_push_errors_total", "mesh summary publications failed")
		tel.Metrics.GaugeFunc("coopmesh_summary_age_seconds", "time since this AP's last successful summary publication", func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			if p.lastPush.IsZero() {
				return 0
			}
			return cfg.Env.Now().Sub(p.lastPush).Seconds()
		})
	}
	return p, nil
}

// Start launches the periodic publish loop. It exits when Stop is
// called, or when Sleep stops consuming time (a shut-down virtual clock
// returns immediately — without this check the loop would spin).
func (p *Publisher) Start() {
	p.cfg.Env.Go("coopmesh.publisher."+p.cfg.Node, func() {
		for {
			before := p.cfg.Env.Now()
			p.cfg.Env.Sleep(p.cfg.Interval)
			p.mu.Lock()
			stopped := p.stopped
			p.mu.Unlock()
			if stopped || p.cfg.Env.Now().Sub(before) < p.cfg.Interval {
				return
			}
			p.Publish() //nolint:errcheck // failures are counted in pushErrs
		}
	})
}

// Stop halts the loop after its current sleep.
func (p *Publisher) Stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
}

// Bump increments the summary generation. The AP's purge handler calls
// it so the next published summary is distinguishable from every summary
// built before the purge — the AP-side half of purge invalidation (the
// directory's tombstone is the controller-side half).
func (p *Publisher) Bump() {
	p.mu.Lock()
	p.gen++
	p.mu.Unlock()
}

// Generation returns the current purge generation (tests).
func (p *Publisher) Generation() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// Publish builds one summary and POSTs it to the directory.
func (p *Publisher) Publish() error {
	p.mu.Lock()
	p.seq++
	seq, gen := p.seq, p.gen
	p.mu.Unlock()
	sum := BuildSummary(p.cfg.Node, p.cfg.Addr, p.cfg.Store, p.cfg.FPRate, seq, gen)
	body, err := sum.Encode()
	if err != nil {
		p.pushErrs.Inc()
		return err
	}
	req := httplite.NewRequest("POST", p.cfg.Target.Host, PathSummary)
	req.Body = body
	req.Set("Content-Type", "application/json")
	resp, err := p.client.Do(p.cfg.Target, req)
	if err != nil {
		p.pushErrs.Inc()
		return err
	}
	if resp.Status != 200 {
		p.pushErrs.Inc()
		return fmt.Errorf("coopmesh: summary push to %s: status %d", p.cfg.Target, resp.Status)
	}
	p.mu.Lock()
	p.lastPush = p.cfg.Env.Now()
	p.mu.Unlock()
	p.pushes.Inc()
	return nil
}
