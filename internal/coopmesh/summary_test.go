package coopmesh

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"apecache/internal/cachepolicy"
	"apecache/internal/dnswire"
	"apecache/internal/objstore"
	"apecache/internal/transport"
	"apecache/internal/vclock"
)

var testAddr = transport.Addr{Host: "ap0", Port: 8080}

func put(t *testing.T, store *cachepolicy.Store, url string, ttl time.Duration) {
	t.Helper()
	obj := &objstore.Object{URL: url, App: "t", Size: 64, TTL: ttl, Priority: objstore.PriorityLow}
	if err := store.Put(obj, make([]byte, 64), 0); err != nil {
		t.Fatalf("put %s: %v", url, err)
	}
}

// A summary must reflect the store's servable set exactly: every
// resident fresh entry is a Bloom member (zero false negatives against
// ground truth), while expired and purged-stale entries are excluded
// from the counts.
func TestBuildSummaryMatchesStore(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	store := cachepolicy.NewStore(sim, 5<<20, 0, cachepolicy.NewPACM(), nil)
	var fresh []string
	for d := 0; d < 3; d++ {
		for j := 0; j < 4; j++ {
			u := fmt.Sprintf("http://d%d.example/obj%d", d, j)
			put(t, store, u, time.Hour)
			fresh = append(fresh, u)
		}
	}
	// Expired on arrival: TTL 0 means Expiry == now, never servable.
	put(t, store, "http://d0.example/expired", 0)
	// Purged but resident (stale-while-revalidate): not offerable to peers.
	put(t, store, "http://d1.example/staled", time.Hour)
	store.Purge("http://d1.example/staled", 99, false, true)
	fresh = fresh[:0:0]
	for d := 0; d < 3; d++ {
		for j := 0; j < 4; j++ {
			fresh = append(fresh, fmt.Sprintf("http://d%d.example/obj%d", d, j))
		}
	}

	s := BuildSummary("ap0", testAddr, store, 0, 1, 0)
	if s.Entries != len(fresh) {
		t.Fatalf("Entries = %d, want %d (expired and stale excluded)", s.Entries, len(fresh))
	}
	for _, u := range fresh {
		if !s.Bloom.MayContain(dnswire.HashURL(u)) {
			t.Errorf("summary misses resident fresh %s", u)
		}
	}
	if !sort.SliceIsSorted(s.Domains, func(i, j int) bool { return s.Domains[i].Domain < s.Domains[j].Domain }) {
		t.Error("domains not sorted")
	}
	totalFresh := 0
	for _, d := range s.Domains {
		totalFresh += d.Fresh
		if d.Known < d.Fresh {
			t.Errorf("%s: known %d < fresh %d", d.Domain, d.Known, d.Fresh)
		}
		if d.Digest == 0 {
			t.Errorf("%s: zero digest over a non-empty set", d.Domain)
		}
	}
	if totalFresh != s.Entries {
		t.Errorf("domain fresh sum %d != entries %d", totalFresh, s.Entries)
	}

	// Digests are deterministic for an unchanged store and move when the
	// served set changes.
	again := BuildSummary("ap0", testAddr, store, 0, 2, 0)
	digests := func(s *Summary) map[string]uint64 {
		out := map[string]uint64{}
		for _, d := range s.Domains {
			out[d.Domain] = d.Digest
		}
		return out
	}
	before := digests(s)
	for dom, dg := range digests(again) {
		if before[dom] != dg {
			t.Errorf("%s: digest changed on an unchanged store", dom)
		}
	}
	put(t, store, "http://d0.example/new", time.Hour)
	after := digests(BuildSummary("ap0", testAddr, store, 0, 3, 0))
	if after["d0.example"] == before["d0.example"] {
		t.Error("d0 digest unchanged after adding an object")
	}
	if after["d1.example"] != before["d1.example"] {
		t.Error("d1 digest moved without a d1 change")
	}
}

func TestSummaryEncodeDecodeRoundTrip(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	store := cachepolicy.NewStore(sim, 5<<20, 0, cachepolicy.NewPACM(), nil)
	put(t, store, "http://a.example/x", time.Hour)
	s := BuildSummary("ap0", testAddr, store, 0, 7, 3)
	body, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSummary(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "ap0" || got.Seq != 7 || got.Generation != 3 || got.Entries != 1 {
		t.Fatalf("round trip mangled summary: %+v", got)
	}
	if !got.Bloom.MayContain(dnswire.HashURL("http://a.example/x")) {
		t.Error("membership lost in round trip")
	}
}

func TestDecodeSummaryRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "{",
		"no node":      `{"addr":{"host":"a","port":1}}`,
		"no addr":      `{"node":"ap0"}`,
		"broken bloom": `{"node":"ap0","addr":{"host":"a","port":1},"bloom":{"k":3,"m":128,"bits":[1]}}`,
	}
	for name, body := range cases {
		if _, err := DecodeSummary([]byte(body)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// An empty cache publishes a summary with no filter; the nil Bloom must
// survive the wire and answer no to every lookup.
func TestEmptySummary(t *testing.T) {
	sim := vclock.NewSim(time.Time{})
	store := cachepolicy.NewStore(sim, 5<<20, 0, cachepolicy.NewPACM(), nil)
	s := BuildSummary("ap0", testAddr, store, 0, 1, 0)
	if s.Entries != 0 || s.Bloom != nil {
		t.Fatalf("empty store summary: %+v", s)
	}
	body, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSummary(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bloom.MayContain(dnswire.HashURL("http://a.example/x")) {
		t.Error("empty summary claims membership")
	}
}
