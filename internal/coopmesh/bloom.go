// Package coopmesh is the AP-to-AP cooperative cache mesh: every AP
// periodically publishes a compact summary of its cache contents (a Bloom
// filter over the resident URL hashes plus per-domain digests) to the
// Wi-Cache controller, which aggregates the summaries into a peer
// directory. On a local miss an AP asks the directory which peer likely
// holds the object and fetches it over the LAN instead of delegating to
// the edge — cooperative caching (Atzeni et al.) with the latency-aware
// peer-vs-edge gate of LAC: the peer path is only taken when its modeled
// RTT beats the edge path.
//
// Summaries are probabilistic: a Bloom positive may be false, and a peer
// may have evicted the object since it last published. Both cases fall
// back to the ordinary edge delegation, so the mesh can only remove
// backhaul traffic, never correctness. Coherence safety comes from two
// sides: peer fills carry the origin version and are gated by the same
// purge high-water mark as edge fills, and the controller tombstones a
// URL on every relayed purge so summaries published before the purge stop
// yielding that URL.
package coopmesh

import (
	"fmt"
	"math"
)

// DefaultFPRate is the Bloom false-positive bound summaries are sized
// for: ~1% keeps a 320-object AP cache summary under 400 bytes of filter.
const DefaultFPRate = 0.01

// Bloom is a JSON-serializable Bloom filter over 64-bit URL hashes. It
// uses double hashing (Kirsch–Mitzenmacher): the i-th probe position is
// h1 + i*h2 mod m, with h1/h2 derived from the one URL hash the DNS-Cache
// wire format already computes — no re-hashing of URL bytes.
type Bloom struct {
	// K is the number of probe positions per element.
	K uint32 `json:"k"`
	// M is the filter size in bits (len(Bits)*64 rounded up from it).
	M uint64 `json:"m"`
	// Bits is the packed bit array.
	Bits []uint64 `json:"bits"`
}

// NewBloom sizes a filter for n elements at the given false-positive
// rate (DefaultFPRate when fpRate is out of (0,1)).
func NewBloom(n int, fpRate float64) *Bloom {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = DefaultFPRate
	}
	ln2 := math.Ln2
	m := uint64(math.Ceil(-float64(n) * math.Log(fpRate) / (ln2 * ln2)))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(float64(m) / float64(n) * ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &Bloom{K: k, M: m, Bits: make([]uint64, (m+63)/64)}
}

// mix64 is the splitmix64 finalizer: it derives the second probe hash
// from the first so a single 64-bit URL hash feeds all K probes.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add inserts a URL hash.
func (b *Bloom) Add(h uint64) {
	h1, h2 := h, mix64(h)|1
	for i := uint32(0); i < b.K; i++ {
		pos := (h1 + uint64(i)*h2) % b.M
		b.Bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether the hash may have been added: false is
// definitive (zero false negatives), true is probabilistic.
func (b *Bloom) MayContain(h uint64) bool {
	if b == nil || b.M == 0 || len(b.Bits) == 0 {
		return false
	}
	h1, h2 := h, mix64(h)|1
	for i := uint32(0); i < b.K; i++ {
		pos := (h1 + uint64(i)*h2) % b.M
		if b.Bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// valid sanity-checks a decoded filter.
func (b *Bloom) valid() error {
	if b == nil {
		return nil // an empty cache publishes no filter
	}
	if b.K < 1 || b.K > 16 {
		return fmt.Errorf("coopmesh: bloom k=%d out of range", b.K)
	}
	if b.M == 0 || uint64(len(b.Bits)) != (b.M+63)/64 {
		return fmt.Errorf("coopmesh: bloom bits/m mismatch (m=%d, words=%d)", b.M, len(b.Bits))
	}
	return nil
}
