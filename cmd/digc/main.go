// Command digc is a dig-like diagnostic for DNS-Cache queries: it sends a
// query for a domain to an APE-CACHE AP with the hashed URLs of interest
// piggybacked in the Additional section, and prints the resolved address
// plus every returned ⟨hash, flag⟩ tuple.
//
// Usage:
//
//	digc -server 127.0.0.1:15353 api.demo.example \
//	     http://api.demo.example/obj0 http://api.demo.example/obj1
//
// With no URL arguments it sends a plain DNS query.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"apecache"
	"apecache/internal/dnsd"
	"apecache/internal/dnswire"
	"apecache/internal/transport"
)

func main() {
	server := flag.String("server", "127.0.0.1:15353", "AP DNS endpoint host:port")
	timeout := flag.Duration("timeout", 2*time.Second, "query timeout")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: digc [-server host:port] <domain> [url ...]")
		os.Exit(2)
	}
	if err := run(*server, *timeout, flag.Arg(0), flag.Args()[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "digc:", err)
		os.Exit(1)
	}
}

func run(server string, timeout time.Duration, domain string, urls []string) error {
	i := strings.LastIndexByte(server, ':')
	if i < 0 {
		return fmt.Errorf("bad -server %q", server)
	}
	port, err := strconv.Atoi(server[i+1:])
	if err != nil {
		return fmt.Errorf("bad -server port: %w", err)
	}
	serverAddr := transport.Addr{Host: server[:i], Port: uint16(port)}
	host := apecache.NewRealHost("")

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	query := dnswire.NewQuery(uint16(rng.Intn(1<<16)), domain, dnswire.TypeA)
	hashes := make(map[uint64]string, len(urls))
	if len(urls) > 0 {
		entries := make([]dnswire.CacheEntry, 0, len(urls))
		for _, u := range urls {
			basic := apecache.BasicURL(u)
			h := apecache.HashURL(basic)
			hashes[h] = basic
			entries = append(entries, dnswire.CacheEntry{Hash: h})
		}
		query.Additional = append(query.Additional,
			dnswire.NewCacheRR(domain, dnswire.ClassCacheRequest, entries))
		fmt.Printf(";; DNS-Cache query: %s + %d hashed URL(s) -> %s\n", domain, len(urls), serverAddr)
	} else {
		fmt.Printf(";; plain DNS query: %s -> %s\n", domain, serverAddr)
	}

	start := time.Now()
	resp, err := dnsd.Query(host, serverAddr, query, timeout)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf(";; rcode=%d elapsed=%v\n", resp.Header.RCode, elapsed.Round(10*time.Microsecond))
	for _, rr := range resp.Answers {
		switch rr.Type {
		case dnswire.TypeA:
			ip := dnswire.IPv4{rr.Data[0], rr.Data[1], rr.Data[2], rr.Data[3]}
			marker := ""
			if ip == dnswire.DummyIP {
				marker = "  (dummy IP: domain fully available on the AP)"
			}
			fmt.Printf("%-40s %6d  A      %s%s\n", rr.Name, rr.TTL, ip, marker)
		case dnswire.TypeCNAME:
			target, _ := rr.CNAMETarget()
			fmt.Printf("%-40s %6d  CNAME  %s\n", rr.Name, rr.TTL, target)
		}
	}
	if rr, ok := resp.FindCacheRR(dnswire.ClassCacheResponse); ok {
		entries, err := dnswire.ParseCacheRR(rr)
		if err != nil {
			return err
		}
		fmt.Printf(";; DNS-Cache response: %d entr%s\n", len(entries), plural(len(entries)))
		for _, e := range entries {
			label := hashes[e.Hash]
			if label == "" {
				label = fmt.Sprintf("(hash %016x)", e.Hash)
			}
			fmt.Printf("   %-50s %s\n", label, e.Flag)
		}
	}
	return nil
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
