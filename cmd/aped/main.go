// Command aped runs the APE-CACHE access-point runtime on real sockets:
// a DNS server handling both ordinary and DNS-Cache queries on UDP and
// the object-cache/delegation HTTP endpoint on TCP. It is the deployable
// equivalent of the paper's modified dnsmasq.
//
// Usage:
//
//	aped -ip 127.0.0.1 -dns-port 15353 -http-port 18080 \
//	     -upstream 8.8.8.8:53 -edge 127.0.0.1:8080 \
//	     -cache-mb 5 -policy pacm -coherence swr \
//	     -mesh 127.0.0.1:9090 -mesh-interval 5s
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"apecache"
	"apecache/internal/transport"
)

func main() {
	var (
		ip       = flag.String("ip", "127.0.0.1", "local IP to bind")
		dnsPort  = flag.Uint("dns-port", 15353, "UDP port for DNS / DNS-Cache queries")
		httpPort = flag.Uint("http-port", 18080, "TCP port for cache fetch and delegation")
		upstream = flag.String("upstream", "127.0.0.1:53", "upstream resolver host:port")
		edge     = flag.String("edge", "127.0.0.1:8080", "edge cache server host:port")
		cacheMB  = flag.Int64("cache-mb", 5, "cache capacity in MiB")
		policy   = flag.String("policy", "pacm", "eviction policy: pacm or lru")
		cohMode  = flag.String("coherence", "off", "coherence mode: off, invalidate or swr")
		busFlag  = flag.String("bus", "", "coherence hub host:port (default: the -edge endpoint)")
		purgeB   = flag.Bool("purge-batch", false, "accept coalesced MsgBatch purge deliveries from a sharded hub")
		purgeDom = flag.String("purge-domains", "", "comma-separated domain interest announced to a sharded hub (empty: receive every purge)")
		fleet    = flag.String("fleet", "", "fleet controller host:port for telemetry snapshot pushes (empty: disabled)")
		snapIntv = flag.Duration("snapshot-interval", 10*time.Second, "telemetry snapshot push cadence (with -fleet)")
		node     = flag.String("node", "", "fleet/mesh node name (default ap:<ip>:<http-port>; must be unique per AP)")
		mesh     = flag.String("mesh", "", "mesh directory (Wi-Cache controller) host:port for cooperative peer fetch (empty: disabled)")
		meshIntv = flag.Duration("mesh-interval", 5*time.Second, "content summary publish cadence (with -mesh)")
		decLog   = flag.Bool("decision-log", false, "record a cache decision ledger and serve /explain (apectl explain)")
		decCap   = flag.Int("decision-log-cap", 0, "decision ledger ring capacity in events (0: default 4096)")
	)
	flag.Parse()
	var domains []string
	for _, d := range strings.Split(*purgeDom, ",") {
		if d = strings.TrimSpace(d); d != "" {
			domains = append(domains, d)
		}
	}
	if err := run(*ip, uint16(*dnsPort), uint16(*httpPort), *upstream, *edge, *cacheMB, *policy, *cohMode, *busFlag, *fleet, *snapIntv, *node, *mesh, *meshIntv, *purgeB, domains, *decLog, *decCap); err != nil {
		fmt.Fprintln(os.Stderr, "aped:", err)
		os.Exit(1)
	}
}

func run(ip string, dnsPort, httpPort uint16, upstream, edge string, cacheMB int64, policyName, cohMode, bus, fleet string, snapIntv time.Duration, node, mesh string, meshIntv time.Duration, purgeBatch bool, purgeDomains []string, decisionLog bool, decisionLogCap int) error {
	upstreamAddr, err := parseAddr(upstream)
	if err != nil {
		return fmt.Errorf("bad -upstream: %w", err)
	}
	edgeAddr, err := parseAddr(edge)
	if err != nil {
		return fmt.Errorf("bad -edge: %w", err)
	}
	mode, err := apecache.ParseCoherenceMode(cohMode)
	if err != nil {
		return fmt.Errorf("bad -coherence: %w", err)
	}
	var busAddr transport.Addr
	if bus != "" {
		if busAddr, err = parseAddr(bus); err != nil {
			return fmt.Errorf("bad -bus: %w", err)
		}
	}
	var fleetAddr transport.Addr
	if fleet != "" {
		if fleetAddr, err = parseAddr(fleet); err != nil {
			return fmt.Errorf("bad -fleet: %w", err)
		}
	}
	var meshAddr transport.Addr
	if mesh != "" {
		if meshAddr, err = parseAddr(mesh); err != nil {
			return fmt.Errorf("bad -mesh: %w", err)
		}
	}
	if node == "" && (fleet != "" || mesh != "") {
		// Several APs can share one host address (loopback demos,
		// NAT): the HTTP port keeps fleet/mesh node names unique.
		node = fmt.Sprintf("ap:%s:%d", ip, httpPort)
	}
	var policy apecache.CachePolicy
	switch policyName {
	case "pacm":
		policy = apecache.NewPACM()
	case "lru":
		policy = apecache.NewLRU()
	default:
		return fmt.Errorf("unknown policy %q (pacm or lru)", policyName)
	}

	ap := apecache.NewAP(apecache.APConfig{
		Env:              apecache.RealEnv(),
		Host:             apecache.NewRealHost(ip),
		Upstream:         upstreamAddr,
		EdgeAddr:         edgeAddr,
		CacheCapacity:    cacheMB << 20,
		Policy:           policy,
		Rng:              rand.New(rand.NewSource(time.Now().UnixNano())),
		DNSPort:          dnsPort,
		HTTPPort:         httpPort,
		Coherence:        mode,
		BusAddr:          busAddr,
		PurgeBatch:       purgeBatch,
		PurgeDomains:     purgeDomains,
		FleetAddr:        fleetAddr,
		SnapshotInterval: snapIntv,
		NodeName:         node,
		MeshAddr:         meshAddr,
		MeshInterval:     meshIntv,
		DecisionLog:      decisionLog,
		DecisionLogCap:   decisionLogCap,
	})
	if err := ap.Start(); err != nil {
		return err
	}
	defer ap.Stop()
	fmt.Printf("aped: DNS on %s, HTTP on %s, %d MiB %s cache, upstream %s, edge %s, coherence %s\n",
		ap.DNSAddr(), ap.HTTPAddr(), cacheMB, policyName, upstreamAddr, edgeAddr, mode)
	fmt.Printf("aped: telemetry on %s/metrics, /debug/vars, /debug/pprof, /trace, /events\n", ap.HTTPAddr())
	if !fleetAddr.IsZero() {
		fmt.Printf("aped: pushing telemetry snapshots to %s every %s\n", fleetAddr, snapIntv)
	}
	if !meshAddr.IsZero() {
		fmt.Printf("aped: publishing content summaries to mesh directory %s every %s\n", meshAddr, meshIntv)
	}
	if decisionLog {
		fmt.Printf("aped: decision ledger on (%d events), explain at %s/explain\n", ap.Ledger().Cap(), ap.HTTPAddr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("aped: shutting down")
	return nil
}

func parseAddr(s string) (transport.Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return transport.Addr{}, fmt.Errorf("missing port in %q", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port < 1 || port > 65535 {
		return transport.Addr{}, fmt.Errorf("bad port in %q", s)
	}
	return transport.Addr{Host: s[:i], Port: uint16(port)}, nil
}
