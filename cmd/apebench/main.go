// Command apebench regenerates every table and figure of the paper's
// evaluation on the virtual-clock simulator and prints them next to the
// published values.
//
// Usage:
//
//	apebench [-scale 0.25] [-seed 1] [-list] [experiment ...]
//	apebench -perf [-perfout BENCH_apcache.json]
//
// With no experiment arguments, everything runs in paper order. Scale
// multiplies the one-hour workload durations (1.0 reproduces the paper's
// full runs; smaller values trade precision for speed).
//
// -perf runs the benchmark trajectory harness instead: hot-path
// microbenchmarks (lookup, admission, eviction, wire codec), the Fig-11
// end-to-end latency sweeps, and the Table-4 hit-ratio invariants, all
// recorded to a JSON trajectory file for comparison across changes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"apecache/internal/experiments"
	"apecache/internal/perfbench"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload duration multiplier (1.0 = the paper's one-hour runs)")
	seed := flag.Int64("seed", 1, "random seed")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	jsonOut := flag.Bool("json", false, "emit results as a JSON array instead of text tables")
	perf := flag.Bool("perf", false, "run the benchmark trajectory harness and write a JSON report")
	perfOut := flag.String("perfout", "BENCH_apcache.json", "trajectory report path for -perf")
	flag.Parse()

	if *perf {
		if err := runPerf(*scale, *seed, *perfOut); err != nil {
			fmt.Fprintf(os.Stderr, "apebench: perf: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	selected := flag.Args()
	if len(selected) == 0 {
		for _, e := range experiments.All() {
			selected = append(selected, e.ID)
		}
	}

	cfg := experiments.RunConfig{Scale: *scale, Seed: *seed}
	failed := 0
	var results []jsonResult
	for _, id := range selected {
		e, ok := experiments.ByID(strings.ToLower(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "apebench: unknown experiment %q (use -list)\n", id)
			failed++
			continue
		}
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apebench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		elapsed := time.Since(start)
		if *jsonOut {
			results = append(results, jsonResult{
				ID:         res.ID,
				Title:      res.Title,
				Header:     res.Header,
				Rows:       res.Rows,
				Notes:      res.Notes,
				WallTimeMS: elapsed.Milliseconds(),
				Scale:      *scale,
				Seed:       *seed,
			})
			continue
		}
		fmt.Println(res.Format())
		fmt.Printf("(%s completed in %v wall time)\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "apebench: encode: %v\n", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runPerf produces the perf trajectory report and writes it to path.
func runPerf(scale float64, seed int64, path string) error {
	report, err := perfbench.Run(perfbench.Config{Scale: scale, Seed: seed})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Print(report.Summary())
	fmt.Printf("trajectory written to %s\n", path)
	return nil
}

// jsonResult is the machine-readable experiment record emitted by -json.
type jsonResult struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	Header     []string   `json:"header"`
	Rows       [][]string `json:"rows"`
	Notes      []string   `json:"notes,omitempty"`
	WallTimeMS int64      `json:"wall_time_ms"`
	Scale      float64    `json:"scale"`
	Seed       int64      `json:"seed"`
}
