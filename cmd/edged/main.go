// Command edged runs an origin server plus an edge cache server on real
// sockets, serving a synthetic object catalog — the deployable stand-in
// for the paper's edge desktop. aped delegates to it and APE-CACHE
// clients fall back to it on Cache-Miss flags. The coherence hub shares
// the edge port: origins publish purges to /_coherence/publish, APs (and
// the Wi-Cache controller) subscribe via /_coherence/subscribe, and the
// hub invalidates the edge's own copy before relaying.
//
// Usage:
//
//	edged -ip 127.0.0.1 -edge-port 8080 -origin-port 8081 \
//	      -domains api.demo.example,cdn.demo.example -objects 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"apecache"
	"apecache/internal/coherence"
	"apecache/internal/httplite"
	"apecache/internal/objstore"
	"apecache/internal/wicache"
)

func main() {
	var (
		ip         = flag.String("ip", "127.0.0.1", "local IP to bind")
		edgePort   = flag.Uint("edge-port", 8080, "TCP port of the edge cache server")
		originPort = flag.Uint("origin-port", 8081, "TCP port of the origin server")
		domains    = flag.String("domains", "api.demo.example", "comma-separated object domains")
		objects    = flag.Int("objects", 8, "objects per domain")
		seed       = flag.Int64("seed", 1, "catalog generation seed")
		fleetPort  = flag.Uint("fleet-port", 0, "TCP port of the fleet observability controller (0: disabled)")
		busShards  = flag.Int("bus-shards", 0, "enable the sharded, batched purge fan-out with this many domain shards (0: legacy per-delivery relay)")
		busFlush   = flag.Duration("bus-flush", 0, "purge coalescing flush interval (with -bus-shards; 0: default)")
		busBatch   = flag.Int("bus-batch", 0, "max purge messages per wire batch (with -bus-shards; 0: default)")
	)
	flag.Parse()
	if err := run(*ip, uint16(*edgePort), uint16(*originPort), uint16(*fleetPort), strings.Split(*domains, ","), *objects, *seed,
		coherence.DispatchConfig{Shards: *busShards, FlushInterval: *busFlush, MaxBatch: *busBatch}); err != nil {
		fmt.Fprintln(os.Stderr, "edged:", err)
		os.Exit(1)
	}
}

func run(ip string, edgePort, originPort, fleetPort uint16, domains []string, perDomain int, seed int64, dispatch coherence.DispatchConfig) error {
	env := apecache.RealEnv()
	host := apecache.NewRealHost(ip)
	rng := rand.New(rand.NewSource(seed))

	var objs []*objstore.Object
	for _, domain := range domains {
		domain = strings.TrimSpace(domain)
		if domain == "" {
			continue
		}
		for i := range perDomain {
			objs = append(objs, &objstore.Object{
				URL:         fmt.Sprintf("http://%s/obj%d", domain, i),
				App:         domain,
				Size:        (1 + rng.Intn(100)) << 10,
				TTL:         time.Duration(10+rng.Intn(51)) * time.Minute,
				Priority:    1 + rng.Intn(2),
				OriginDelay: time.Duration(20+rng.Intn(31)) * time.Millisecond,
			})
		}
	}
	catalog := objstore.NewCatalog(objs...)
	if err := catalog.Validate(); err != nil {
		return err
	}

	tel := apecache.NewTelemetry(env)
	origin := objstore.NewOriginServer(env, catalog)
	origin.Instrument(tel)
	originL, err := origin.Run(host, originPort)
	if err != nil {
		return err
	}
	defer originL.Close()

	edge := objstore.NewEdgeCacheServer(env, host, catalog, originL.Addr())
	edge.Instrument(tel)
	hub := coherence.NewHub(env, host, func(m coherence.Msg) { edge.Invalidate(m.URL) })
	hub.Instrument(tel)
	if dispatch.Shards > 0 {
		hub.EnableDispatch(dispatch)
	}
	edgeL, err := host.Listen(edgePort)
	if err != nil {
		return err
	}
	defer edgeL.Close()
	mux := httplite.NewMux()
	tel.Register(mux)
	mux.Handle("/", hub.Wrap(edge))
	srv := httplite.NewServer(env, mux)
	env.Go("edged.edge", func() { srv.Serve(edgeL) })

	fmt.Printf("edged: origin on %s, edge cache on %s, %d objects across %d domain(s)\n",
		originL.Addr(), edgeL.Addr(), catalog.Len(), len(catalog.Domains()))
	fmt.Printf("edged: coherence bus on %s%s (publish) and %s (subscribe)\n",
		edgeL.Addr(), coherence.PathPublish, coherence.PathSubscribe)
	if d := hub.Dispatcher(); d != nil {
		cfg := d.Config()
		fmt.Printf("edged: sharded purge fan-out: %d shards, %d workers, flush %v, batches up to %d (stats at %s)\n",
			cfg.Shards, cfg.Workers, cfg.FlushInterval, cfg.MaxBatch, coherence.PathStats)
	}
	fmt.Printf("edged: telemetry on %s/metrics, /debug/vars, /debug/pprof, /trace, /events\n", edgeL.Addr())
	if fleetPort != 0 {
		ctl := wicache.NewController(env, host)
		ctl.Instrument(tel)
		ctl.EnableFleet(wicache.FleetConfig{})
		ctl.EnableMesh()
		if err := ctl.Start(fleetPort); err != nil {
			return err
		}
		fmt.Printf("edged: fleet controller on %s (/fleet, /alerts; APs push with aped -fleet)\n", ctl.Addr())
		fmt.Printf("edged: mesh directory on %s/mesh (APs publish with aped -mesh; inspect with apectl peers)\n", ctl.Addr())
	}
	for _, o := range catalog.All() {
		fmt.Printf("  %s  (%d KB, prio %d, ttl %v)\n", o.URL, o.Size>>10, o.Priority, o.TTL)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("edged: shutting down")
	return nil
}
