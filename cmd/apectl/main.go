// Command apectl inspects and controls a running APE-CACHE deployment:
// the default mode fetches an AP's /status endpoint and renders the cache
// occupancy and runtime counters; the purge subcommand publishes an
// invalidation on the coherence bus hosted by edged; metrics and trace
// read the telemetry endpoints any daemon exposes.
//
// Usage:
//
//	apectl -ap 127.0.0.1:18080                  # human-readable summary
//	apectl -ap 127.0.0.1:18080 -raw             # raw JSON (-json is an alias)
//	apectl explain -ap 127.0.0.1:18080 http://api.demo.example/obj0
//	                                            # why is the object (not) cached — needs aped -decision-log
//	apectl metrics -addr 127.0.0.1:18080        # metric table (-raw: Prometheus text, -json: JSON object)
//	apectl metrics -addr 127.0.0.1:18080 -grep apcache_
//	apectl trace -addr 127.0.0.1:18080          # list traces in the span ring
//	apectl trace -addr 127.0.0.1:18080 3fb1c2d4e5f60708   # spans of one trace
//	apectl fleet -addr 127.0.0.1:9090           # controller fleet view: health, latency, alerts
//	apectl alerts -addr 127.0.0.1:9090          # SLO alert states and transition history
//	apectl peers -addr 127.0.0.1:9090           # mesh directory: published content summaries
//	apectl bus -hub 127.0.0.1:8080              # coherence hub counters: publications, relays, queue depth, drops
//	apectl purge -hub 127.0.0.1:8080 \
//	       -url http://api.demo.example/obj0 -version 1   # push a purge
//	apectl purge -hub 127.0.0.1:8080 \
//	       -url http://api.demo.example/obj0 -version 2 -gone
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	neturl "net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"apecache"
	"apecache/internal/coherence"
	"apecache/internal/httplite"
	"apecache/internal/transport"
)

// status mirrors apcache.Status for decoding.
type status struct {
	CacheUsedBytes int64      `json:"cache_used_bytes"`
	CacheCapacity  int64      `json:"cache_capacity_bytes"`
	Entries        int        `json:"entries"`
	Insertions     int        `json:"insertions"`
	Updates        int        `json:"updates"`
	Evictions      int        `json:"evictions"`
	Expired        int        `json:"expired"`
	Blocked        int        `json:"blocked"`
	Delegations    int        `json:"delegations"`
	Prefetches     int        `json:"prefetches"`
	Mesh           string     `json:"mesh"`
	PeerHits       int        `json:"peer_hits"`
	PeerFallbacks  int        `json:"peer_fallbacks"`
	PeerBytes      int64      `json:"peer_bytes"`
	DelegBytes     int64      `json:"delegation_bytes"`
	DNSHits        int        `json:"dns_cache_hits"`
	DNSMisses      int        `json:"dns_cache_misses"`
	Policy         string     `json:"policy"`
	UptimeSec      int64      `json:"uptime_sec"`
	Coherence      string     `json:"coherence"`
	Purges         int        `json:"purges"`
	Revalidations  int        `json:"revalidations"`
	StaleServes    int        `json:"stale_serves"`
	StaleDrops     int        `json:"stale_drops"`
	Gini           float64    `json:"gini"`
	PerApp         []appUsage `json:"per_app"`
}

// appUsage mirrors cachepolicy.AppStorage for decoding.
type appUsage struct {
	App        string  `json:"app"`
	Entries    int     `json:"entries"`
	Bytes      int64   `json:"bytes"`
	Rate       float64 `json:"rate"`
	Efficiency float64 `json:"efficiency"`
	Utility    float64 `json:"utility"`
}

func main() {
	var err error
	switch {
	case len(os.Args) > 1 && os.Args[1] == "purge":
		err = runPurge(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "explain":
		err = runExplain(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "metrics":
		err = runMetrics(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "trace":
		err = runTrace(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "fleet":
		err = runFleet(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "alerts":
		err = runAlerts(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "peers":
		err = runPeers(os.Args[2:])
	case len(os.Args) > 1 && os.Args[1] == "bus":
		err = runBus(os.Args[2:])
	default:
		ap := flag.String("ap", "127.0.0.1:18080", "AP HTTP endpoint host:port")
		raw := flag.Bool("raw", false, "print the raw JSON status")
		jsonOut := flag.Bool("json", false, "print the raw JSON status (alias of -raw)")
		flag.Parse()
		err = runStatus(*ap, *raw || *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "apectl:", err)
		os.Exit(1)
	}
}

// fetch GETs a path from a daemon's HTTP endpoint.
func fetch(addrStr, path string) ([]byte, error) {
	addr, err := parseAddr(addrStr)
	if err != nil {
		return nil, fmt.Errorf("bad -addr: %w", err)
	}
	client := httplite.NewClient(apecache.NewRealHost(""))
	resp, err := client.Get(addr, addr.Host, path)
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, fmt.Errorf("%s returned %d: %s", path, resp.Status, strings.TrimSpace(string(resp.Body)))
	}
	return resp.Body, nil
}

// runMetrics fetches /metrics and renders the samples as an aligned
// name/value table (or the raw Prometheus text with -raw).
func runMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:18080", "daemon HTTP endpoint host:port")
	raw := fs.Bool("raw", false, "print the raw Prometheus exposition text")
	jsonOut := fs.Bool("json", false, "print the parsed samples as one JSON object")
	grep := fs.String("grep", "", "only show metrics whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := fetch(*addr, "/metrics")
	if err != nil {
		return err
	}
	if *raw {
		fmt.Print(string(body))
		return nil
	}
	type sample struct{ name, value string }
	var samples []sample
	width := 0
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		s := sample{name: line[:i], value: line[i+1:]}
		if *grep != "" && !strings.Contains(s.name, *grep) {
			continue
		}
		if len(s.name) > width {
			width = len(s.name)
		}
		samples = append(samples, s)
	}
	if *jsonOut {
		obj := make(map[string]float64, len(samples))
		for _, s := range samples {
			v, err := strconv.ParseFloat(s.value, 64)
			if err != nil {
				continue
			}
			obj[s.name] = v
		}
		out, err := json.MarshalIndent(obj, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	for _, s := range samples {
		fmt.Printf("%-*s  %s\n", width, s.name, s.value)
	}
	return nil
}

// span mirrors telemetry.Span for decoding.
type span struct {
	Trace    string        `json:"trace"`
	Name     string        `json:"name"`
	Node     string        `json:"node"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"dur_ns"`
	Detail   string        `json:"detail"`
}

// runTrace lists the traces in a daemon's span ring, or renders the
// spans of one trace as a timeline.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:18080", "daemon HTTP endpoint host:port")
	raw := fs.Bool("raw", false, "print the raw JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		body, err := fetch(*addr, "/trace")
		if err != nil {
			return err
		}
		if *raw {
			fmt.Print(string(body))
			return nil
		}
		var traces []struct {
			Trace string `json:"trace"`
			Spans int    `json:"spans"`
		}
		if err := json.Unmarshal(body, &traces); err != nil {
			return fmt.Errorf("decode trace index: %w", err)
		}
		if len(traces) == 0 {
			fmt.Println("no traces recorded")
			return nil
		}
		fmt.Printf("%-16s  %s\n", "TRACE", "SPANS")
		for _, tr := range traces {
			fmt.Printf("%-16s  %d\n", tr.Trace, tr.Spans)
		}
		return nil
	}
	body, err := fetch(*addr, "/trace?id="+fs.Arg(0))
	if err != nil {
		return err
	}
	if *raw {
		fmt.Print(string(body))
		return nil
	}
	var spans []span
	if err := json.Unmarshal(body, &spans); err != nil {
		return fmt.Errorf("decode spans: %w", err)
	}
	if len(spans) == 0 {
		fmt.Println("no spans")
		return nil
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	base := spans[0].Start
	fmt.Printf("trace %s — %d spans\n", spans[0].Trace, len(spans))
	fmt.Printf("%-10s  %-12s  %-14s  %-18s  %s\n", "OFFSET", "DURATION", "SPAN", "NODE", "DETAIL")
	for _, s := range spans {
		fmt.Printf("%-10s  %-12s  %-14s  %-18s  %s\n",
			"+"+s.Start.Sub(base).String(), s.Duration.String(), s.Name, s.Node, s.Detail)
	}
	return nil
}

// fleetView mirrors wicache.FleetView for decoding.
type fleetView struct {
	Now time.Time `json:"now"`
	APs []struct {
		AP           string             `json:"ap"`
		Score        float64            `json:"score"`
		Status       string             `json:"status"`
		HitRatio     float64            `json:"hit_ratio"`
		HitRatioLong float64            `json:"hit_ratio_long"`
		StalePerMin  float64            `json:"stale_serves_per_min"`
		DelegFail    float64            `json:"deleg_fail_ratio"`
		SnapshotAge  float64            `json:"snapshot_age_sec"`
		Seq          uint64             `json:"seq"`
		Penalties    map[string]float64 `json:"penalties"`
	} `json:"aps"`
	Latency []struct {
		Metric    string  `json:"metric"`
		Count     uint64  `json:"count"`
		MeanMs    float64 `json:"mean_ms"`
		P50Ms     float64 `json:"p50_ms"`
		P99Ms     float64 `json:"p99_ms"`
		Exemplars []struct {
			Trace   string  `json:"trace"`
			Node    string  `json:"node"`
			Span    string  `json:"span"`
			Seconds float64 `json:"seconds"`
		} `json:"exemplars"`
	} `json:"latency"`
	Alerts     []alertStatus `json:"alerts"`
	MissCauses []struct {
		Cause  string  `json:"cause"`
		Misses float64 `json:"misses"`
	} `json:"miss_causes"`
}

// alertStatus mirrors wicache.AlertStatus for decoding.
type alertStatus struct {
	SLO       string    `json:"slo"`
	Scope     string    `json:"scope"`
	State     string    `json:"state"`
	Since     time.Time `json:"since"`
	ShortBurn float64   `json:"short_burn"`
	LongBurn  float64   `json:"long_burn"`
}

// runFleet fetches the controller's /fleet view and renders per-AP
// health, fleet-merged latency distributions with exemplar trace IDs,
// and the alert summary.
func runFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "controller HTTP endpoint host:port")
	raw := fs.Bool("raw", false, "print the raw JSON")
	jsonOut := fs.Bool("json", false, "print the raw JSON (alias of -raw)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := fetch(*addr, "/fleet")
	if err != nil {
		return err
	}
	if *raw || *jsonOut {
		fmt.Print(string(body))
		return nil
	}
	var v fleetView
	if err := json.Unmarshal(body, &v); err != nil {
		return fmt.Errorf("decode fleet view: %w", err)
	}
	var firing int
	for _, a := range v.Alerts {
		if a.State == "firing" {
			firing++
		}
	}
	fmt.Printf("fleet @ %s — %d nodes, %d alerts firing\n", v.Now.Format(time.RFC3339), len(v.APs), firing)
	if len(v.APs) > 0 {
		fmt.Printf("%-18s  %5s  %-8s  %6s  %9s  %9s  %6s  %5s\n",
			"NODE", "SCORE", "STATUS", "HIT%", "STALE/MIN", "DELEGFAIL", "AGE(s)", "SEQ")
		for _, h := range v.APs {
			fmt.Printf("%-18s  %5.0f  %-8s  %6.1f  %9.1f  %9.3f  %6.1f  %5d\n",
				h.AP, h.Score, h.Status, h.HitRatio*100, h.StalePerMin, h.DelegFail, h.SnapshotAge, h.Seq)
		}
	}
	if len(v.Latency) > 0 {
		fmt.Printf("\n%-40s  %8s  %9s  %9s  %9s\n", "LATENCY (fleet-merged)", "COUNT", "MEAN(ms)", "P50(ms)", "P99(ms)")
		for _, l := range v.Latency {
			fmt.Printf("%-40s  %8d  %9.3f  %9.3f  %9.3f\n", l.Metric, l.Count, l.MeanMs, l.P50Ms, l.P99Ms)
			for _, ex := range l.Exemplars {
				fmt.Printf("    exemplar %s  %-14s  %-18s  %.1fms\n", ex.Trace, ex.Span, ex.Node, ex.Seconds*1e3)
			}
		}
	}
	if len(v.MissCauses) > 0 {
		fmt.Printf("\n%-18s  %10s\n", "MISS CAUSE", "MISSES")
		for _, c := range v.MissCauses {
			fmt.Printf("%-18s  %10.0f\n", c.Cause, c.Misses)
		}
	}
	if len(v.Alerts) > 0 {
		fmt.Printf("\n%-18s  %-18s  %-7s  %6s  %6s\n", "SLO", "SCOPE", "STATE", "SHORT", "LONG")
		for _, a := range v.Alerts {
			fmt.Printf("%-18s  %-18s  %-7s  %6.2f  %6.2f\n", a.SLO, a.Scope, a.State, a.ShortBurn, a.LongBurn)
		}
	}
	return nil
}

// runAlerts fetches /alerts and renders the current states plus the
// retained fire/resolve history.
func runAlerts(args []string) error {
	fs := flag.NewFlagSet("alerts", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "controller HTTP endpoint host:port")
	raw := fs.Bool("raw", false, "print the raw JSON")
	firingOnly := fs.Bool("firing", false, "only show alerts currently firing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := fetch(*addr, "/alerts")
	if err != nil {
		return err
	}
	if *raw {
		fmt.Print(string(body))
		return nil
	}
	var payload struct {
		Alerts  []alertStatus `json:"alerts"`
		History []struct {
			Time      time.Time `json:"t"`
			SLO       string    `json:"slo"`
			Scope     string    `json:"scope"`
			Event     string    `json:"event"`
			ShortBurn float64   `json:"short_burn"`
			LongBurn  float64   `json:"long_burn"`
		} `json:"history"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		return fmt.Errorf("decode alerts: %w", err)
	}
	shown := 0
	fmt.Printf("%-18s  %-18s  %-7s  %6s  %6s  %s\n", "SLO", "SCOPE", "STATE", "SHORT", "LONG", "SINCE")
	for _, a := range payload.Alerts {
		if *firingOnly && a.State != "firing" {
			continue
		}
		shown++
		fmt.Printf("%-18s  %-18s  %-7s  %6.2f  %6.2f  %s\n",
			a.SLO, a.Scope, a.State, a.ShortBurn, a.LongBurn, a.Since.Format(time.RFC3339))
	}
	if shown == 0 {
		fmt.Println("(no alerts)")
	}
	if len(payload.History) > 0 && !*firingOnly {
		fmt.Println("\nhistory:")
		for _, ev := range payload.History {
			fmt.Printf("%s  %-7s  %-18s  %-18s  short %.2f long %.2f\n",
				ev.Time.Format(time.RFC3339), ev.Event, ev.SLO, ev.Scope, ev.ShortBurn, ev.LongBurn)
		}
	}
	return nil
}

// runPeers fetches the mesh directory's /mesh/peers listing and renders
// each AP's published content summary: what it offers the mesh and how
// stale that picture is.
func runPeers(args []string) error {
	fs := flag.NewFlagSet("peers", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "controller HTTP endpoint host:port")
	raw := fs.Bool("raw", false, "print the raw JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := fetch(*addr, "/mesh/peers")
	if err != nil {
		return err
	}
	if *raw {
		fmt.Print(string(body))
		return nil
	}
	var peers []struct {
		Node       string `json:"node"`
		Addr       struct {
			Host string
			Port uint16
		} `json:"addr"`
		Entries    int     `json:"entries"`
		Domains    int     `json:"domains"`
		Seq        uint64  `json:"seq"`
		Generation uint64  `json:"generation"`
		AgeSec     float64 `json:"age_sec"`
	}
	if err := json.Unmarshal(body, &peers); err != nil {
		return fmt.Errorf("decode peers: %w", err)
	}
	if len(peers) == 0 {
		fmt.Println("no published summaries (mesh empty or APs not started with -mesh)")
		return nil
	}
	fmt.Printf("%-18s  %-21s  %7s  %7s  %5s  %3s  %7s\n",
		"NODE", "ADDR", "ENTRIES", "DOMAINS", "SEQ", "GEN", "AGE(s)")
	for _, p := range peers {
		fmt.Printf("%-18s  %-21s  %7d  %7d  %5d  %3d  %7.1f\n",
			p.Node, fmt.Sprintf("%s:%d", p.Addr.Host, p.Addr.Port),
			p.Entries, p.Domains, p.Seq, p.Generation, p.AgeSec)
	}
	return nil
}

// runBus fetches the coherence hub's stats route and renders the bus
// counters: publications accepted, per-subscriber relays, and — when the
// sharded dispatcher is enabled — queue depth, wire batches, drops and
// evictions.
func runBus(args []string) error {
	fs := flag.NewFlagSet("bus", flag.ExitOnError)
	hub := fs.String("hub", "127.0.0.1:8080", "coherence hub (edged edge endpoint) host:port")
	raw := fs.Bool("raw", false, "print the raw JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	body, err := fetch(*hub, coherence.PathStats)
	if err != nil {
		return err
	}
	if *raw {
		fmt.Print(string(body))
		return nil
	}
	var st coherence.HubStats
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("decode bus stats: %w", err)
	}
	fmt.Printf("subscribers   %d\n", st.Subscribers)
	fmt.Printf("published     %d\n", st.Published)
	fmt.Printf("relayed       %d\n", st.Relayed)
	fmt.Printf("evicted       %d\n", st.Evicted)
	if d := st.Dispatch; d != nil {
		fmt.Printf("fan-out       sharded (%d shards, %d workers)\n", d.Shards, d.Workers)
		fmt.Printf("queued        %d\n", d.Queued)
		fmt.Printf("wire batches  %d\n", d.Batches)
		fmt.Printf("delivered     %d\n", d.Delivered)
		fmt.Printf("dropped       %d\n", d.Dropped)
	} else {
		fmt.Printf("fan-out       legacy (one delivery task per subscriber)\n")
	}
	return nil
}

// explainReport mirrors apcache.ExplainReport for decoding.
type explainReport struct {
	URL       string `json:"url"`
	Flag      string `json:"flag"`
	Resident  bool   `json:"resident"`
	Stale     bool   `json:"stale"`
	Blocked   bool   `json:"blocked"`
	Negative  bool   `json:"negative"`
	MissCause string `json:"miss_cause"`
	Utility   *struct {
		Rate      float64 `json:"rate"`
		RemainMin float64 `json:"remain_min"`
		LatencyMS float64 `json:"latency_ms"`
		Priority  int     `json:"priority"`
		Utility   float64 `json:"utility"`
		Density   float64 `json:"density"`
	} `json:"utility"`
	Events []struct {
		Seq       uint64    `json:"seq"`
		Time      time.Time `json:"t"`
		Op        string    `json:"op"`
		App       string    `json:"app"`
		Size      int64     `json:"size"`
		Version   int64     `json:"version"`
		Gone      bool      `json:"gone"`
		Utility   float64   `json:"utility"`
		Density   float64   `json:"density"`
		RemainMin float64   `json:"remain_min"`
	} `json:"events"`
	MissCauses  map[string]uint64 `json:"miss_causes"`
	TotalMisses uint64            `json:"total_misses"`
}

// runExplain asks an AP's /explain endpoint why a URL is (or is not)
// cached: the decision history the ledger retains, the live PACM
// utility standing when resident, and the AP-wide miss-cause
// breakdown. The AP must run with the decision ledger on
// (aped -decision-log); without it the endpoint is not mounted.
func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	ap := fs.String("ap", "127.0.0.1:18080", "AP HTTP endpoint host:port")
	jsonOut := fs.Bool("json", false, "print the raw JSON report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("explain: exactly one URL argument required")
	}
	body, err := fetch(*ap, "/explain?u="+neturl.QueryEscape(fs.Arg(0)))
	if err != nil {
		return fmt.Errorf("%w (is the AP running with -decision-log?)", err)
	}
	if *jsonOut {
		fmt.Println(string(body))
		return nil
	}
	var rep explainReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("decode explain report: %w", err)
	}
	state := "not resident"
	switch {
	case rep.Resident && rep.Stale:
		state = "resident (stale)"
	case rep.Resident:
		state = "resident"
	case rep.Blocked:
		state = "block-listed (oversized)"
	case rep.Negative:
		state = "negative-cached (gone at origin)"
	}
	fmt.Printf("%s\n", rep.URL)
	fmt.Printf("flag:   %s — %s\n", rep.Flag, state)
	if rep.MissCause != "" {
		fmt.Printf("a miss now would be attributed to: %s\n", rep.MissCause)
	}
	if u := rep.Utility; u != nil {
		fmt.Printf("PACM:   U = R·e·l·p = %.3f·%.1fmin·%.1fms·p%d = %.1f (density %.4f/byte)\n",
			u.Rate, u.RemainMin, u.LatencyMS, u.Priority, u.Utility, u.Density)
	}
	if len(rep.Events) == 0 {
		fmt.Println("no retained decisions (never seen, or history aged out of the ring)")
	} else {
		fmt.Printf("\n%-5s  %-24s  %-14s  %8s  %4s  %9s  %7s\n",
			"SEQ", "TIME", "DECISION", "SIZE", "VER", "UTILITY", "REMAIN")
		for _, e := range rep.Events {
			op := e.Op
			if e.Gone {
				op += " (gone)"
			}
			fmt.Printf("%-5d  %-24s  %-14s  %8d  %4d  %9.1f  %6.1fm\n",
				e.Seq, e.Time.Format(time.RFC3339), op, e.Size, e.Version, e.Utility, e.RemainMin)
		}
	}
	if len(rep.MissCauses) > 0 {
		causes := make([]string, 0, len(rep.MissCauses))
		for c := range rep.MissCauses {
			causes = append(causes, c)
		}
		sort.Strings(causes)
		fmt.Printf("\nAP-wide miss attribution (%d total):\n", rep.TotalMisses)
		for _, c := range causes {
			fmt.Printf("  %-18s  %d\n", c, rep.MissCauses[c])
		}
	}
	return nil
}

// runPurge publishes one invalidation to the coherence hub.
func runPurge(args []string) error {
	fs := flag.NewFlagSet("purge", flag.ExitOnError)
	hub := fs.String("hub", "127.0.0.1:8080", "coherence hub (edged edge endpoint) host:port")
	url := fs.String("url", "", "object URL to purge")
	version := fs.Int64("version", 1, "origin version the purge carries; copies with an older version are dropped")
	gone := fs.Bool("gone", false, "the object no longer exists at the origin (drives negative caching)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("purge: -url is required")
	}
	if *version < 1 {
		return fmt.Errorf("purge: -version must be >= 1")
	}
	hubAddr, err := parseAddr(*hub)
	if err != nil {
		return fmt.Errorf("bad -hub: %w", err)
	}
	msg := coherence.Msg{URL: *url, Version: *version, Gone: *gone}
	client := httplite.NewClient(apecache.NewRealHost(""))
	if err := coherence.Publish(client, hubAddr, msg); err != nil {
		return err
	}
	fmt.Printf("published %s to %s\n", msg, hubAddr)
	return nil
}

func runStatus(apAddr string, raw bool) error {
	addr, err := parseAddr(apAddr)
	if err != nil {
		return fmt.Errorf("bad -ap: %w", err)
	}

	client := httplite.NewClient(apecache.NewRealHost(""))
	resp, err := client.Get(addr, addr.Host, "/status")
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("status endpoint returned %d", resp.Status)
	}
	if raw {
		fmt.Println(string(resp.Body))
		return nil
	}
	var s status
	if err := json.Unmarshal(resp.Body, &s); err != nil {
		return fmt.Errorf("decode status: %w", err)
	}

	pct := 0.0
	if s.CacheCapacity > 0 {
		pct = float64(s.CacheUsedBytes) / float64(s.CacheCapacity) * 100
	}
	fmt.Printf("AP %s — policy %s, up %ds\n", apAddr, s.Policy, s.UptimeSec)
	fmt.Printf("cache:  %d objects, %d / %d KB (%.1f%%)\n",
		s.Entries, s.CacheUsedBytes>>10, s.CacheCapacity>>10, pct)
	fmt.Printf("mgmt:   %d insertions, %d updates, %d evictions, %d expired, %d blocked\n",
		s.Insertions, s.Updates, s.Evictions, s.Expired, s.Blocked)
	fmt.Printf("runtime: %d delegations (%d KB), %d prefetches, DNS cache %d hits / %d misses\n",
		s.Delegations, s.DelegBytes>>10, s.Prefetches, s.DNSHits, s.DNSMisses)
	fmt.Printf("mesh:   %s — %d peer hits (%d KB), %d fallbacks\n",
		s.Mesh, s.PeerHits, s.PeerBytes>>10, s.PeerFallbacks)
	fmt.Printf("coherence: %s — %d purges, %d revalidations, %d stale serves, %d stale drops\n",
		s.Coherence, s.Purges, s.Revalidations, s.StaleServes, s.StaleDrops)
	fmt.Printf("fairness: Gini %.3f over %d app(s)\n", s.Gini, len(s.PerApp))
	if len(s.PerApp) > 0 {
		fmt.Printf("%-24s  %7s  %10s  %8s  %10s  %8s\n", "APP", "ENTRIES", "KB", "RATE", "EFFICIENCY", "UTILITY")
		for _, a := range s.PerApp {
			fmt.Printf("%-24s  %7d  %10d  %8.3f  %10.1f  %8.1f\n",
				a.App, a.Entries, a.Bytes>>10, a.Rate, a.Efficiency, a.Utility)
		}
	}
	return nil
}

// parseAddr parses "host:port".
func parseAddr(s string) (transport.Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return transport.Addr{}, fmt.Errorf("missing port in %q", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port < 1 || port > 65535 {
		return transport.Addr{}, fmt.Errorf("bad port in %q", s)
	}
	return transport.Addr{Host: s[:i], Port: uint16(port)}, nil
}
