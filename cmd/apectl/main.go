// Command apectl inspects and controls a running APE-CACHE deployment:
// the default mode fetches an AP's /status endpoint and renders the cache
// occupancy and runtime counters; the purge subcommand publishes an
// invalidation on the coherence bus hosted by edged.
//
// Usage:
//
//	apectl -ap 127.0.0.1:18080                  # human-readable summary
//	apectl -ap 127.0.0.1:18080 -raw             # raw JSON
//	apectl purge -hub 127.0.0.1:8080 \
//	       -url http://api.demo.example/obj0 -version 1   # push a purge
//	apectl purge -hub 127.0.0.1:8080 \
//	       -url http://api.demo.example/obj0 -version 2 -gone
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"apecache"
	"apecache/internal/coherence"
	"apecache/internal/httplite"
	"apecache/internal/transport"
)

// status mirrors apcache.Status for decoding.
type status struct {
	CacheUsedBytes int64  `json:"cache_used_bytes"`
	CacheCapacity  int64  `json:"cache_capacity_bytes"`
	Entries        int    `json:"entries"`
	Insertions     int    `json:"insertions"`
	Updates        int    `json:"updates"`
	Evictions      int    `json:"evictions"`
	Expired        int    `json:"expired"`
	Blocked        int    `json:"blocked"`
	Delegations    int    `json:"delegations"`
	Prefetches     int    `json:"prefetches"`
	DNSHits        int    `json:"dns_cache_hits"`
	DNSMisses      int    `json:"dns_cache_misses"`
	Policy         string `json:"policy"`
	UptimeSec      int64  `json:"uptime_sec"`
	Coherence      string `json:"coherence"`
	Purges         int    `json:"purges"`
	Revalidations  int    `json:"revalidations"`
	StaleServes    int    `json:"stale_serves"`
	StaleDrops     int    `json:"stale_drops"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "purge" {
		if err := runPurge(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "apectl:", err)
			os.Exit(1)
		}
		return
	}
	ap := flag.String("ap", "127.0.0.1:18080", "AP HTTP endpoint host:port")
	raw := flag.Bool("raw", false, "print the raw JSON status")
	flag.Parse()
	if err := runStatus(*ap, *raw); err != nil {
		fmt.Fprintln(os.Stderr, "apectl:", err)
		os.Exit(1)
	}
}

// runPurge publishes one invalidation to the coherence hub.
func runPurge(args []string) error {
	fs := flag.NewFlagSet("purge", flag.ExitOnError)
	hub := fs.String("hub", "127.0.0.1:8080", "coherence hub (edged edge endpoint) host:port")
	url := fs.String("url", "", "object URL to purge")
	version := fs.Int64("version", 1, "origin version the purge carries; copies with an older version are dropped")
	gone := fs.Bool("gone", false, "the object no longer exists at the origin (drives negative caching)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *url == "" {
		return fmt.Errorf("purge: -url is required")
	}
	if *version < 1 {
		return fmt.Errorf("purge: -version must be >= 1")
	}
	hubAddr, err := parseAddr(*hub)
	if err != nil {
		return fmt.Errorf("bad -hub: %w", err)
	}
	msg := coherence.Msg{URL: *url, Version: *version, Gone: *gone}
	client := httplite.NewClient(apecache.NewRealHost(""))
	if err := coherence.Publish(client, hubAddr, msg); err != nil {
		return err
	}
	fmt.Printf("published %s to %s\n", msg, hubAddr)
	return nil
}

func runStatus(apAddr string, raw bool) error {
	addr, err := parseAddr(apAddr)
	if err != nil {
		return fmt.Errorf("bad -ap: %w", err)
	}

	client := httplite.NewClient(apecache.NewRealHost(""))
	resp, err := client.Get(addr, addr.Host, "/status")
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("status endpoint returned %d", resp.Status)
	}
	if raw {
		fmt.Println(string(resp.Body))
		return nil
	}
	var s status
	if err := json.Unmarshal(resp.Body, &s); err != nil {
		return fmt.Errorf("decode status: %w", err)
	}

	pct := 0.0
	if s.CacheCapacity > 0 {
		pct = float64(s.CacheUsedBytes) / float64(s.CacheCapacity) * 100
	}
	fmt.Printf("AP %s — policy %s, up %ds\n", apAddr, s.Policy, s.UptimeSec)
	fmt.Printf("cache:  %d objects, %d / %d KB (%.1f%%)\n",
		s.Entries, s.CacheUsedBytes>>10, s.CacheCapacity>>10, pct)
	fmt.Printf("mgmt:   %d insertions, %d updates, %d evictions, %d expired, %d blocked\n",
		s.Insertions, s.Updates, s.Evictions, s.Expired, s.Blocked)
	fmt.Printf("runtime: %d delegations, %d prefetches, DNS cache %d hits / %d misses\n",
		s.Delegations, s.Prefetches, s.DNSHits, s.DNSMisses)
	fmt.Printf("coherence: %s — %d purges, %d revalidations, %d stale serves, %d stale drops\n",
		s.Coherence, s.Purges, s.Revalidations, s.StaleServes, s.StaleDrops)
	return nil
}

// parseAddr parses "host:port".
func parseAddr(s string) (transport.Addr, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return transport.Addr{}, fmt.Errorf("missing port in %q", s)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port < 1 || port > 65535 {
		return transport.Addr{}, fmt.Errorf("bad port in %q", s)
	}
	return transport.Addr{Host: s[:i], Port: uint16(port)}, nil
}
