// Command apectl inspects a running APE-CACHE access point: it fetches
// the AP's /status endpoint and renders the cache occupancy and runtime
// counters.
//
// Usage:
//
//	apectl -ap 127.0.0.1:18080            # human-readable summary
//	apectl -ap 127.0.0.1:18080 -raw      # raw JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"apecache"
	"apecache/internal/httplite"
	"apecache/internal/transport"
)

// status mirrors apcache.Status for decoding.
type status struct {
	CacheUsedBytes int64  `json:"cache_used_bytes"`
	CacheCapacity  int64  `json:"cache_capacity_bytes"`
	Entries        int    `json:"entries"`
	Insertions     int    `json:"insertions"`
	Updates        int    `json:"updates"`
	Evictions      int    `json:"evictions"`
	Expired        int    `json:"expired"`
	Blocked        int    `json:"blocked"`
	Delegations    int    `json:"delegations"`
	Prefetches     int    `json:"prefetches"`
	DNSHits        int    `json:"dns_cache_hits"`
	DNSMisses      int    `json:"dns_cache_misses"`
	Policy         string `json:"policy"`
	UptimeSec      int64  `json:"uptime_sec"`
}

func main() {
	ap := flag.String("ap", "127.0.0.1:18080", "AP HTTP endpoint host:port")
	raw := flag.Bool("raw", false, "print the raw JSON status")
	flag.Parse()
	if err := run(*ap, *raw); err != nil {
		fmt.Fprintln(os.Stderr, "apectl:", err)
		os.Exit(1)
	}
}

func run(apAddr string, raw bool) error {
	i := strings.LastIndexByte(apAddr, ':')
	if i < 0 {
		return fmt.Errorf("bad -ap %q", apAddr)
	}
	port, err := strconv.Atoi(apAddr[i+1:])
	if err != nil || port < 1 || port > 65535 {
		return fmt.Errorf("bad -ap port in %q", apAddr)
	}
	addr := transport.Addr{Host: apAddr[:i], Port: uint16(port)}

	client := httplite.NewClient(apecache.NewRealHost(""))
	resp, err := client.Get(addr, addr.Host, "/status")
	if err != nil {
		return err
	}
	if resp.Status != 200 {
		return fmt.Errorf("status endpoint returned %d", resp.Status)
	}
	if raw {
		fmt.Println(string(resp.Body))
		return nil
	}
	var s status
	if err := json.Unmarshal(resp.Body, &s); err != nil {
		return fmt.Errorf("decode status: %w", err)
	}

	pct := 0.0
	if s.CacheCapacity > 0 {
		pct = float64(s.CacheUsedBytes) / float64(s.CacheCapacity) * 100
	}
	fmt.Printf("AP %s — policy %s, up %ds\n", apAddr, s.Policy, s.UptimeSec)
	fmt.Printf("cache:  %d objects, %d / %d KB (%.1f%%)\n",
		s.Entries, s.CacheUsedBytes>>10, s.CacheCapacity>>10, pct)
	fmt.Printf("mgmt:   %d insertions, %d updates, %d evictions, %d expired, %d blocked\n",
		s.Insertions, s.Updates, s.Evictions, s.Expired, s.Blocked)
	fmt.Printf("runtime: %d delegations, %d prefetches, DNS cache %d hits / %d misses\n",
		s.Delegations, s.Prefetches, s.DNSHits, s.DNSMisses)
	return nil
}
