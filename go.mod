module apecache

go 1.24
