package apecache_test

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"apecache"
	"apecache/internal/objstore"
)

// TestPublicAPIOverRealSockets drives the entire public surface — AP,
// client, registry (both programming models), policies — over genuine
// loopback sockets, the way a downstream user would.
func TestPublicAPIOverRealSockets(t *testing.T) {
	env := apecache.RealEnv()
	host := apecache.NewRealHost("")

	obj := &objstore.Object{
		URL:         "http://api.pub.example/payload",
		App:         "pub",
		Size:        16 << 10,
		TTL:         apecache.DefaultTTL,
		Priority:    apecache.PriorityHigh,
		OriginDelay: 20 * time.Millisecond,
	}
	catalog := objstore.NewCatalog(obj)

	origin := objstore.NewOriginServer(env, catalog)
	originL, err := origin.Run(host, 0)
	if err != nil {
		t.Fatalf("origin: %v", err)
	}
	defer originL.Close()
	edge := objstore.NewEdgeCacheServer(env, host, catalog, originL.Addr())
	edgeL, err := edge.Run(host, 0)
	if err != nil {
		t.Fatalf("edge: %v", err)
	}
	defer edgeL.Close()

	// Zero ports would mean the defaults (53/8080), which need
	// privileges; bind high test ports instead.
	ap := apecache.NewAP(apecache.APConfig{
		Env:           env,
		Host:          host,
		EdgeAddr:      edgeL.Addr(),
		CacheCapacity: 1 << 20,
		Policy:        apecache.NewPACM(),
		Rng:           rand.New(rand.NewSource(1)),
		DNSPort:       35353,
		HTTPPort:      38080,
	})
	if err := ap.Start(); err != nil {
		t.Fatalf("ap.Start: %v", err)
	}
	defer ap.Stop()

	// Annotation model.
	type payloadHolder struct {
		Payload []byte `cacheable:"id=http://api.pub.example/payload,priority=2,ttl=30"`
	}
	registry := apecache.NewRegistry("pub")
	if err := registry.RegisterStruct(&payloadHolder{}); err != nil {
		t.Fatalf("RegisterStruct: %v", err)
	}

	client := apecache.NewClient(apecache.ClientConfig{
		Env:      env,
		Host:     host,
		Registry: registry,
		APDNS:    ap.DNSAddr(),
		APHTTP:   ap.HTTPAddr(),
		Rng:      rand.New(rand.NewSource(2)),
		FlagTTL:  time.Millisecond,
	})

	want := obj.Body()
	for i := range 3 {
		body, err := client.Get("http://api.pub.example/payload?n=" + string(rune('a'+i)))
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("Get %d: corrupted body", i)
		}
	}
	if ap.Delegations != 1 {
		t.Errorf("Delegations = %d, want 1 (then cache hits)", ap.Delegations)
	}
	if hits := client.Stats().Hits.All.Hits(); hits != 2 {
		t.Errorf("client hits = %d, want 2", hits)
	}

	// API-based model on the same client.
	if _, err := client.InvokeHTTPRequest("http://api.pub.example/payload", apecache.PriorityHigh, apecache.DefaultTTL); err != nil {
		t.Fatalf("InvokeHTTPRequest: %v", err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if apecache.HashURL("a") == apecache.HashURL("b") {
		t.Error("HashURL trivial collision")
	}
	if got := apecache.BasicURL("http://x/y?z=1"); got != "http://x/y" {
		t.Errorf("BasicURL = %q", got)
	}
	if apecache.NewPACM() == nil || apecache.NewLRU() == nil {
		t.Error("policy constructors returned nil")
	}
	if apecache.PriorityLow != 1 || apecache.PriorityHigh != 2 {
		t.Error("priority constants drifted from the paper's 1/2")
	}
}
