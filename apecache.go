// Package apecache is the public API of the APE-CACHE reproduction — a
// millisecond-level edge cache that runs directly on WiFi access points
// (Li, Shrestha, Song, Tilevich: "Edge Cache on WiFi Access Points:
// Millisecond-Level App Latency Almost for Free", ICDCS 2024).
//
// The library has two halves:
//
//   - The client runtime (Client): an HTTP client that intercepts requests
//     for developer-declared cacheable objects, piggybacks cache lookups
//     into DNS queries (custom DNS-Cache resource records), and fetches
//     each object from the AP cache, the edge cache, or through AP
//     delegation depending on the returned flag. Cacheable objects are
//     declared either with struct tags (the Go analog of the paper's Java
//     annotations) or through the explicit registry API.
//
//   - The AP runtime (AP): a DNS forwarder extended with DNS-Cache query
//     handling plus an object cache managed by the Priority-Aware Cache
//     Management algorithm (PACM) — utility-driven eviction under a
//     capacity budget and a Gini-coefficient fairness constraint.
//
// Both halves run identically over real UDP/TCP sockets (package
// internal/realnet, used by the cmd/ daemons) and over the deterministic
// virtual-time network simulator (internal/simnet + internal/vclock) that
// the experiment harness uses to reproduce the paper's evaluation; see
// cmd/apebench and EXPERIMENTS.md.
package apecache

import (
	"time"

	"apecache/internal/apcache"
	"apecache/internal/apeclient"
	"apecache/internal/cachepolicy"
	"apecache/internal/coherence"
	"apecache/internal/dnswire"
	"apecache/internal/objstore"
	"apecache/internal/realnet"
	"apecache/internal/telemetry"
	"apecache/internal/transport"
	"apecache/internal/vclock"
)

// Priority levels for cacheable objects (the paper's 1 = low, 2 = high).
const (
	PriorityLow  = objstore.PriorityLow
	PriorityHigh = objstore.PriorityHigh
)

// Cacheable declares one cacheable object: its basic URL identity, its
// priority, and its time-to-live.
type Cacheable = apeclient.Cacheable

// Registry holds an app's cacheable declarations. Populate it with
// Register (API model) or RegisterStruct (annotation/struct-tag model).
type Registry = apeclient.Registry

// NewRegistry creates an empty registry for the named app.
func NewRegistry(app string) *Registry { return apeclient.NewRegistry(app) }

// Client is the APE-CACHE-enhanced HTTP client.
type Client = apeclient.Client

// ClientConfig assembles a Client; see apeclient.Config for field
// documentation.
type ClientConfig = apeclient.Config

// NewClient builds a client runtime.
func NewClient(cfg ClientConfig) *Client { return apeclient.New(cfg) }

// AP is the access-point runtime: DNS-Cache server, object cache and
// delegation proxy.
type AP = apcache.AP

// APConfig assembles an AP; see apcache.Config for field documentation.
type APConfig = apcache.Config

// NewAP builds an AP runtime; call Start on the result.
func NewAP(cfg APConfig) *AP { return apcache.New(cfg) }

// CachePolicy selects the AP's eviction policy.
type CachePolicy = cachepolicy.Policy

// NewPACM returns the paper's Priority-Aware Cache Management policy.
func NewPACM() CachePolicy { return cachepolicy.NewPACM() }

// NewLRU returns the LRU baseline policy.
func NewLRU() CachePolicy { return cachepolicy.NewLRU() }

// CoherenceMode selects how the AP reacts to origin purge messages
// relayed over the invalidation bus; see internal/coherence.
type CoherenceMode = coherence.Mode

// Coherence modes: TTL-only (off), immediate eviction, or
// stale-while-revalidate.
const (
	CoherenceOff        = coherence.ModeOff
	CoherenceInvalidate = coherence.ModeInvalidate
	CoherenceSWR        = coherence.ModeSWR
)

// ParseCoherenceMode maps a CLI/config string ("off", "invalidate",
// "swr") to a CoherenceMode.
func ParseCoherenceMode(s string) (CoherenceMode, error) { return coherence.ParseMode(s) }

// Telemetry bundles a process's metrics registry, request tracer and
// event log; see internal/telemetry. Every server that accepts one
// registers its instruments on the shared registry, and Register mounts
// the exposition endpoints (/metrics, /debug/vars, /debug/pprof, /trace,
// /events) on a daemon's HTTP mux.
type Telemetry = telemetry.Telemetry

// NewTelemetry builds a telemetry bundle on env's clock.
func NewTelemetry(env Env) *Telemetry { return telemetry.New(env) }

// Addr identifies a transport endpoint (host + port).
type Addr = transport.Addr

// Host is one machine's view of the network: simulated nodes and real
// network stacks both satisfy it.
type Host = transport.Host

// NewRealHost returns a Host backed by the operating system's sockets,
// bound to ip (empty means 127.0.0.1).
func NewRealHost(ip string) Host { return realnet.NewHost(ip) }

// Env couples a clock with task spawning; protocol code runs against it
// so the same binaries work under real time and simulated time.
type Env = vclock.Env

// RealEnv returns the wall-clock environment used by the daemons.
func RealEnv() Env { return &vclock.Real{} }

// HashURL returns the DNS-Cache hash of a URL (FNV-1a, 64-bit).
func HashURL(url string) uint64 { return dnswire.HashURL(url) }

// BasicURL strips query parameters and fragments: the cache identity of a
// URL.
func BasicURL(url string) string { return dnswire.BasicURL(url) }

// DefaultTTL is a convenient TTL for examples (30 minutes, the midpoint
// of the paper's 10–60 minute range).
const DefaultTTL = 30 * time.Minute
