// Benchmarks regenerating every table and figure of the paper, plus
// ablations of the design choices DESIGN.md calls out and
// micro-benchmarks of the hot paths. Experiment benches run the same
// runners as cmd/apebench at a reduced workload scale and report their
// headline numbers via b.ReportMetric; run with -v to see the full tables.
package apecache_test

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"apecache/internal/cachepolicy"
	"apecache/internal/dnswire"
	"apecache/internal/experiments"
	"apecache/internal/httplite"
	"apecache/internal/objstore"
	"apecache/internal/simnet"
	"apecache/internal/testbed"
	"apecache/internal/transport"
	"apecache/internal/vclock"
	"apecache/internal/workload"
)

// benchScale keeps each experiment iteration in the seconds range; the
// full paper-scale run is cmd/apebench -scale 1.
const benchScale = 0.05

// runExperiment executes one registered experiment per benchmark
// iteration, logging the rendered table.
func runExperiment(b *testing.B, id string, metricsFromRows func(*experiments.Result) map[string]float64) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Result
	for b.Loop() {
		res, err := e.Run(experiments.RunConfig{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = res
	}
	if last != nil {
		b.Log("\n" + last.Format())
		if metricsFromRows != nil {
			for name, v := range metricsFromRows(last) {
				b.ReportMetric(v, name)
			}
		}
	}
}

// cell parses a numeric table cell.
func cell(res *experiments.Result, row, col int) float64 {
	if row >= len(res.Rows) || col >= len(res.Rows[row]) {
		return 0
	}
	fields := strings.Fields(res.Rows[row][col])
	if len(fields) == 0 {
		return 0
	}
	v, _ := strconv.ParseFloat(fields[0], 64)
	return v
}

func BenchmarkTable1Akamai(b *testing.B) {
	runExperiment(b, "table1", func(r *experiments.Result) map[string]float64 {
		return map[string]float64{
			"mi-apple-dns-ms": cell(r, 0, 2),
			"mi-apple-rtt-ms": cell(r, 0, 4),
		}
	})
}

func BenchmarkTable2Traffic(b *testing.B) {
	runExperiment(b, "table2", nil)
}

func BenchmarkFig2RouterUsage(b *testing.B) {
	runExperiment(b, "fig2", func(r *experiments.Result) map[string]float64 {
		return map[string]float64{
			"high-cpu-max-%":  cell(r, 1, 2),
			"high-mem-max-mb": cell(r, 1, 4),
		}
	})
}

func BenchmarkFig11aLookup(b *testing.B) {
	runExperiment(b, "fig11a", func(r *experiments.Result) map[string]float64 {
		last := len(r.Rows) - 1
		return map[string]float64{
			"ape-lookup-ms":  cell(r, last, 1),
			"wic-lookup-ms":  cell(r, last, 2),
			"edge-lookup-ms": cell(r, last, 3),
		}
	})
}

func BenchmarkFig11bOverhead(b *testing.B) {
	runExperiment(b, "fig11b", func(r *experiments.Result) map[string]float64 {
		return map[string]float64{
			"dnscache-ms":    cell(r, 0, 1),
			"plain-hit-ms":   cell(r, 1, 1),
			"two-queries-ms": cell(r, 3, 1),
		}
	})
}

func BenchmarkFig11cRetrieval(b *testing.B) {
	runExperiment(b, "fig11c", func(r *experiments.Result) map[string]float64 {
		last := len(r.Rows) - 1
		return map[string]float64{
			"ape-retrieval-ms":  cell(r, last, 1),
			"edge-retrieval-ms": cell(r, last, 3),
		}
	})
}

func BenchmarkTable4HitVsSize(b *testing.B) {
	runExperiment(b, "table4", func(r *experiments.Result) map[string]float64 {
		return map[string]float64{
			"pacm-high-100kb": cell(r, 0, 2),
			"lru-100kb":       cell(r, 0, 3),
		}
	})
}

func BenchmarkTable5HitVsFreq(b *testing.B) {
	runExperiment(b, "table5", nil)
}

func BenchmarkTable6HitVsApps(b *testing.B) {
	runExperiment(b, "table6", func(r *experiments.Result) map[string]float64 {
		return map[string]float64{
			"pacm-high-30apps": cell(r, len(r.Rows)-1, 2),
		}
	})
}

func BenchmarkFig12RealApps(b *testing.B) {
	runExperiment(b, "fig12", func(r *experiments.Result) map[string]float64 {
		return map[string]float64{
			"ape-movietrailer-ms":  cell(r, 0, 1),
			"edge-movietrailer-ms": cell(r, 3, 1),
		}
	})
}

func BenchmarkFig13AppLatency(b *testing.B) {
	for _, id := range []string{"fig13a", "fig13b", "fig13c"} {
		b.Run(id, func(b *testing.B) {
			runExperiment(b, id, func(r *experiments.Result) map[string]float64 {
				return map[string]float64{
					"ape-ms":  cell(r, 0, 1),
					"edge-ms": cell(r, 0, 4),
				}
			})
		})
	}
}

func BenchmarkFig14Overhead(b *testing.B) {
	runExperiment(b, "fig14", func(r *experiments.Result) map[string]float64 {
		return map[string]float64{
			"cpu-overhead-%":  cell(r, 2, 1),
			"mem-overhead-mb": cell(r, 2, 3),
		}
	})
}

func BenchmarkTable7Effort(b *testing.B) {
	runExperiment(b, "table7", nil)
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationPACMSolver compares the greedy keep-set solver against
// the exact DP on the same eviction decisions.
func BenchmarkAblationPACMSolver(b *testing.B) {
	for _, mode := range []string{"greedy", "dp"} {
		b.Run(mode, func(b *testing.B) {
			sim := vclock.NewSim(time.Time{})
			sim.Run("bench", func() {
				freq := cachepolicy.NewFreqTracker(sim, 0.7, time.Minute)
				rng := rand.New(rand.NewSource(1))
				now := sim.Now()
				entries := make([]*cachepolicy.Entry, 120)
				for i := range entries {
					app := fmt.Sprintf("app%d", i%10)
					freq.Record(app)
					size := (1 + rng.Intn(100)) << 10
					entries[i] = &cachepolicy.Entry{
						Object: &objstore.Object{
							URL: fmt.Sprintf("http://%s.example/o%d", app, i), App: app,
							Size: size, TTL: time.Hour, Priority: 1 + i%2,
						},
						Data:         make([]byte, size),
						Expiry:       now.Add(time.Duration(10+rng.Intn(50)) * time.Minute),
						FetchLatency: time.Duration(20+rng.Intn(30)) * time.Millisecond,
					}
				}
				incoming := entries[0]
				p := &cachepolicy.PACM{Theta: 0.4, UseDP: mode == "dp"}
				b.ResetTimer()
				for b.Loop() {
					p.SelectVictims(now, entries[1:], incoming, 3<<20, freq)
				}
			})
			sim.Shutdown()
			sim.Wait()
		})
	}
}

// BenchmarkAblationFairness measures the hit-ratio impact of the Gini
// fairness constraint (θ=0.4 vs effectively disabled).
func BenchmarkAblationFairness(b *testing.B) {
	for _, theta := range []float64{0.4, 0.999} {
		b.Run(fmt.Sprintf("theta=%.3f", theta), func(b *testing.B) {
			var hit float64
			for b.Loop() {
				suite := workload.Generate(workload.GeneratorConfig{NumApps: 28, Seed: 1})
				sim := vclock.NewSim(time.Time{})
				sim.Run("bench", func() {
					tb, err := testbed.New(sim, testbed.SystemAPECache, testbed.Config{Suite: suite, Seed: 1})
					if err != nil {
						b.Errorf("testbed: %v", err)
						return
					}
					// Reach into the policy to adjust θ for the ablation.
					if pacm, ok := tb.AP.Store().Policy().(*cachepolicy.PACM); ok {
						pacm.Theta = theta
					}
					res := workload.Run(sim, suite, tb.FetcherFor, 3*time.Minute, 9)
					_ = res
					hit = tb.HitStats().All.Ratio()
				})
				sim.Shutdown()
				sim.Wait()
			}
			b.ReportMetric(hit, "hit-ratio")
		})
	}
}

// BenchmarkAblationDummyIP quantifies the dummy-IP short circuit: mean
// lookup latency with and without it.
func BenchmarkAblationDummyIP(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "enabled"
		if disable {
			name = "disabled"
		}
		b.Run(name, func(b *testing.B) {
			var lookupMS float64
			for b.Loop() {
				suite := workload.Generate(workload.GeneratorConfig{NumApps: 6, Seed: 2})
				sim := vclock.NewSim(time.Time{})
				sim.Run("bench", func() {
					tb, err := testbed.New(sim, testbed.SystemAPECache, testbed.Config{
						Suite: suite, Seed: 2, DisableDummyIP: disable,
					})
					if err != nil {
						b.Errorf("testbed: %v", err)
						return
					}
					workload.Run(sim, suite, tb.FetcherFor, 3*time.Minute, 4)
					lookupMS = float64(tb.LookupStats().Mean()) / float64(time.Millisecond)
				})
				sim.Shutdown()
				sim.Wait()
			}
			b.ReportMetric(lookupMS, "lookup-ms")
		})
	}
}

// BenchmarkAblationPrefetch measures the APPx-style dependency-prefetch
// extension: AP hit ratio with and without prefetch hints.
func BenchmarkAblationPrefetch(b *testing.B) {
	for _, enable := range []bool{false, true} {
		name := "off"
		if enable {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var hit float64
			for b.Loop() {
				suite := workload.Generate(workload.GeneratorConfig{NumApps: 18, Seed: 5})
				sim := vclock.NewSim(time.Time{})
				sim.Run("bench", func() {
					tb, err := testbed.New(sim, testbed.SystemAPECache, testbed.Config{
						Suite: suite, Seed: 5, EnablePrefetch: enable,
					})
					if err != nil {
						b.Errorf("testbed: %v", err)
						return
					}
					workload.Run(sim, suite, tb.FetcherFor, 4*time.Minute, 6)
					hit = tb.HitStats().All.Ratio()
				})
				sim.Shutdown()
				sim.Wait()
			}
			b.ReportMetric(hit, "hit-ratio")
		})
	}
}

// BenchmarkAblationPolicies compares the three eviction policies — PACM
// (the paper's), LRU (the paper's baseline) and GDSF (a classic
// size-aware web policy, beyond the paper) — on the contended default
// workload.
func BenchmarkAblationPolicies(b *testing.B) {
	policies := map[string]func() cachepolicy.Policy{
		"pacm": func() cachepolicy.Policy { return cachepolicy.NewPACM() },
		"lru":  func() cachepolicy.Policy { return cachepolicy.NewLRU() },
		"gdsf": func() cachepolicy.Policy { return cachepolicy.NewGDSF() },
	}
	for _, name := range []string{"pacm", "lru", "gdsf"} {
		mk := policies[name]
		b.Run(name, func(b *testing.B) {
			var hit, high float64
			for b.Loop() {
				suite := workload.Generate(workload.GeneratorConfig{NumApps: 28, Seed: 3})
				sim := vclock.NewSim(time.Time{})
				sim.Run("bench", func() {
					tb, err := testbed.New(sim, testbed.SystemAPECache, testbed.Config{
						Suite: suite, Seed: 3, Policy: mk(),
					})
					if err != nil {
						b.Errorf("testbed: %v", err)
						return
					}
					workload.Run(sim, suite, tb.FetcherFor, 4*time.Minute, 8)
					hit = tb.HitStats().All.Ratio()
					high = tb.HitStats().High.Ratio()
				})
				sim.Shutdown()
				sim.Wait()
			}
			b.ReportMetric(hit, "hit-ratio")
			b.ReportMetric(high, "high-prio-ratio")
		})
	}
}

// --- Micro-benchmarks of the hot paths ------------------------------------

func BenchmarkDNSWireEncodeDecode(b *testing.B) {
	msg := dnswire.NewQuery(7, "api.movietrailer.example", dnswire.TypeA)
	entries := make([]dnswire.CacheEntry, 8)
	for i := range entries {
		entries[i] = dnswire.CacheEntry{Hash: uint64(i) * 0x9E3779B97F4A7C15, Flag: dnswire.FlagCacheHit}
	}
	msg.Additional = append(msg.Additional, dnswire.NewCacheRR("api.movietrailer.example", dnswire.ClassCacheRequest, entries))
	b.ResetTimer()
	for b.Loop() {
		wire, err := msg.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dnswire.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashURL(b *testing.B) {
	for b.Loop() {
		dnswire.HashURL("http://api.movietrailer.example/thumbnail")
	}
}

func BenchmarkHTTPLiteCodec(b *testing.B) {
	resp := httplite.NewResponse(200, objstore.BodyFor("bench", 50<<10))
	var buf strings.Builder
	for b.Loop() {
		buf.Reset()
		if err := httplite.WriteResponse(&buf, resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBodyGeneration(b *testing.B) {
	b.SetBytes(100 << 10)
	for b.Loop() {
		objstore.BodyFor("http://x.example/o", 100<<10)
	}
}

func BenchmarkGini(b *testing.B) {
	values := make(map[string]float64, 30)
	for i := range 30 {
		values[fmt.Sprintf("app%d", i)] = float64(i + 1)
	}
	for b.Loop() {
		cachepolicy.Gini(values)
	}
}

func BenchmarkSimnetEcho(b *testing.B) {
	// Virtual-time round trips per wall second: the simulator's core
	// throughput metric.
	sim := vclock.NewSim(time.Time{})
	net := simnet.New(sim, 1)
	net.SetLink("a", "b", simnet.Path{Latency: time.Millisecond})
	sim.Run("bench", func() {
		l, err := net.Node("b").Listen(80)
		if err != nil {
			b.Errorf("listen: %v", err)
			return
		}
		sim.Go("echo", func() {
			for {
				s, err := l.Accept()
				if err != nil {
					return
				}
				sim.Go("conn", func() {
					buf := make([]byte, 256)
					for {
						n, err := s.Read(buf)
						if err != nil {
							return
						}
						if _, err := s.Write(buf[:n]); err != nil {
							return
						}
					}
				})
			}
		})
		c, err := net.Node("a").Dial(transport.Addr{Host: "b", Port: 80})
		if err != nil {
			b.Errorf("dial: %v", err)
			return
		}
		buf := make([]byte, 256)
		b.ResetTimer()
		for b.Loop() {
			if _, err := c.Write([]byte("ping")); err != nil {
				b.Errorf("write: %v", err)
				return
			}
			if _, err := c.Read(buf); err != nil {
				b.Errorf("read: %v", err)
				return
			}
		}
	})
	sim.Shutdown()
	sim.Wait()
}
